"""Python client of the online transpilation server (``python -m repro serve``).

Stdlib-only (``http.client`` + ``json``): no requests, no aiohttp.  The client speaks
the server's JSON API and converts payloads back into live objects, so a remote round
trip is a drop-in for a local :func:`repro.transpile` call::

    from repro.client import ReproClient

    client = ReproClient("http://127.0.0.1:8000")
    handle = client.submit(circuit, target, options)      # -> RemoteJob
    result = handle.result(timeout=60)                    # -> TranspileResult

Because submission builds the same :class:`~repro.service.TranspileJob` spec the batch
layer uses, the *client-side* fingerprint equals the server-side (and offline) one —
``handle.fingerprint`` can be compared against ``TranspileJob.fingerprint()`` to prove
a remote result corresponds to a given local compile.

``RemoteJob.events()`` iterates the server's chunked NDJSON stream of state
transitions (queued → running → done, the terminal event carrying the pass-timing
breakdown) as they happen.
"""

from __future__ import annotations

import json
import random
import time
from http.client import HTTPConnection
from typing import Dict, Iterator, List, Optional, Sequence, Union
from urllib.parse import urlencode, urlsplit

from .circuit.circuit import QuantumCircuit
from .core.options import TranspileOptions
from .core.pipeline import TranspileResult
from .exceptions import ReproError
from .hardware.coupling import CouplingMap
from .hardware.target import Target
from .obs.tracer import active_tracer, format_traceparent
from .service.jobs import TranspileJob


class ServerError(ReproError):
    """An error response from the transpilation server.

    ``status`` is the HTTP code; for failed jobs, ``exc_type`` and ``traceback`` carry
    the worker-side exception so remote failures are as debuggable as local ones.
    """

    def __init__(
        self,
        message: str,
        *,
        status: int = 0,
        exc_type: str = "",
        traceback: str = "",
    ) -> None:
        super().__init__(message)
        self.status = status
        self.exc_type = exc_type
        self.traceback = traceback


class RetriesExhausted(ServerError):
    """The retry budget ran out on 429s / transient connection errors.

    ``status`` and ``last_body`` preserve the final response (status ``0`` and an
    empty body when the last attempt never reached the server), so callers can still
    inspect what the server last said — e.g. the queue depth in a 429 error document.
    """

    def __init__(
        self, message: str, *, status: int = 0, last_body: bytes = b"", attempts: int = 0
    ) -> None:
        super().__init__(message, status=status)
        self.last_body = last_body
        self.attempts = attempts


class JobFailed(ServerError):
    """A job reached the ``failed`` state; carries the worker's traceback."""


class JobCancelled(ServerError):
    """A job was cancelled before producing a result."""


class ReproClient:
    """Synchronous HTTP client for the online transpilation service.

    Works against a solo server (``python -m repro serve``) and a fleet coordinator
    (``python -m repro fleet coordinator``) alike — the wire API is identical.

    Transient failures retry automatically with exponential backoff and full jitter:
    HTTP 429 (backpressure — the server's ``Retry-After`` is honoured as a floor on
    the delay) and connection-level errors (refused, reset, timed out).  Retrying a
    submission is safe because jobs are content-fingerprinted and admission is
    idempotent: a duplicate that did reach the server coalesces server-side.  The
    budget is ``max_retries`` extra attempts; exhausting it raises
    :class:`RetriesExhausted` with the last response preserved.  ``max_retries=0``
    disables retrying entirely.
    """

    def __init__(
        self,
        url: str = "http://127.0.0.1:8000",
        *,
        timeout: float = 60.0,
        client_id: str = "",
        max_retries: int = 2,
        backoff_base: float = 0.25,
        backoff_cap: float = 4.0,
    ) -> None:
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme not in ("", "http"):
            raise ValueError(f"only http:// URLs are supported, got {url!r}")
        self.host = parts.hostname or "127.0.0.1"
        self.port = parts.port or 8000
        self.timeout = timeout
        self.client_id = client_id
        self.max_retries = max(0, max_retries)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        # Injection points for tests (no wall-clock sleeps in the retry unit tests).
        self._sleep = time.sleep
        self._random = random.random

    # -- low-level transport --------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict] = None,
        *,
        timeout: Optional[float] = None,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> Dict:
        status, body, _headers = self._raw_request_with_retries(
            method, path, payload, timeout=timeout, extra_headers=extra_headers
        )
        try:
            data = json.loads(body.decode("utf-8")) if body else {}
        except json.JSONDecodeError as exc:
            raise ServerError(
                f"server returned non-JSON body for {method} {path}", status=status
            ) from exc
        if status >= 400:
            error = data.get("error", {}) if isinstance(data, dict) else {}
            raise ServerError(
                error.get("message", f"HTTP {status} for {method} {path}"), status=status
            )
        return data

    def _raw_request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict] = None,
        *,
        timeout: Optional[float] = None,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> "tuple[int, bytes, Dict[str, str]]":
        """One attempt; returns ``(status, body, lower-cased response headers)``."""
        connection = HTTPConnection(
            self.host, self.port, timeout=self.timeout if timeout is None else timeout
        )
        try:
            body = None
            headers = dict(extra_headers or {})
            if self.client_id:
                headers["X-Repro-Client"] = self.client_id
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            response_headers = {
                name.lower(): value for name, value in response.getheaders()
            }
            return response.status, response.read(), response_headers
        except (ConnectionError, OSError) as exc:
            raise ServerError(
                f"cannot reach transpilation server at http://{self.host}:{self.port}: {exc}"
            ) from exc
        finally:
            connection.close()

    def _retry_delay(self, attempt: int, retry_after: Optional[str]) -> float:
        """Full-jitter exponential backoff; the server's ``Retry-After`` is a floor."""
        backoff = min(self.backoff_cap, self.backoff_base * (2 ** attempt))
        delay = self._random() * backoff
        if retry_after:
            try:
                delay = max(delay, float(retry_after))
            except ValueError:
                pass
        return delay

    def _raw_request_with_retries(
        self,
        method: str,
        path: str,
        payload: Optional[Dict] = None,
        *,
        timeout: Optional[float] = None,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> "tuple[int, bytes, Dict[str, str]]":
        attempts = self.max_retries + 1
        last_error: Optional[ServerError] = None
        last_status, last_body = 0, b""
        for attempt in range(attempts):
            try:
                status, body, headers = self._raw_request(
                    method, path, payload, timeout=timeout, extra_headers=extra_headers
                )
            except ServerError as exc:  # connection-level: nothing reached the server
                last_error, last_status, last_body = exc, 0, b""
                if attempt + 1 >= attempts:
                    break
                self._sleep(self._retry_delay(attempt, None))
                continue
            if status != 429:
                return status, body, headers
            last_error, last_status, last_body = None, status, body
            if attempt + 1 >= attempts:
                break
            self._sleep(self._retry_delay(attempt, headers.get("retry-after")))
        if attempts == 1 and last_error is not None:
            raise last_error  # retries disabled — surface the plain connection error
        detail = (
            str(last_error)
            if last_error is not None
            else "server kept answering HTTP 429 (backpressure)"
        )
        raise RetriesExhausted(
            f"{attempts} attempts for {method} {path} failed; last error: {detail}",
            status=last_status,
            last_body=last_body,
            attempts=attempts,
        )

    # -- submission -----------------------------------------------------------

    def submit(
        self,
        circuit: Union[QuantumCircuit, str],
        target: Union[Target, CouplingMap, None] = None,
        options: Optional[TranspileOptions] = None,
        *,
        priority: int = 0,
        name: Optional[str] = None,
        **overrides,
    ) -> "RemoteJob":
        """Submit one compile (mirrors ``transpile()``'s signature); returns a handle.

        ``circuit`` may be a live :class:`QuantumCircuit` or OpenQASM 2.0 text.  The
        job spec — and therefore the fingerprint — is built locally, exactly as the
        offline batch path would build it.
        """
        if isinstance(circuit, str):
            from .circuit import qasm

            circuit = qasm.loads(circuit)
        job = TranspileJob.from_circuit(circuit, target, options, name=name, **overrides)
        return self.submit_job(job, priority=priority)

    def submit_job(self, job: TranspileJob, *, priority: int = 0) -> "RemoteJob":
        """Submit a prepared :class:`TranspileJob` spec.

        When tracing is enabled in this process (an ambient :class:`repro.obs.Tracer`
        or ``REPRO_TRACE``), the submission carries a ``traceparent`` header so the
        server threads the client's trace through queue admission and into the worker;
        :meth:`RemoteJob.result` then returns the merged client→server→worker tree in
        ``TranspileResult.trace``.
        """
        payload: Dict = {"job": job.to_dict(), "priority": priority}
        if self.client_id:
            payload["client"] = self.client_id
        tracer = active_tracer()
        client_spans: List[Dict] = []
        if tracer is not None:
            span = tracer.start_span(
                "client.submit", job=job.name, fingerprint=job.fingerprint()[:12]
            )
            headers = {"traceparent": format_traceparent(tracer.trace_id, span.span_id)}
            try:
                data = self._request("POST", "/v1/jobs", payload, extra_headers=headers)
                span.set("job_id", data.get("id"))
            finally:
                tracer.end_span(span)
            client_spans = [span.to_dict()]
        else:
            data = self._request("POST", "/v1/jobs", payload)
        return RemoteJob(self, data, client_spans=client_spans)

    def submit_batch(
        self, jobs: Sequence[TranspileJob], *, priority: int = 0
    ) -> List["RemoteJob"]:
        """Submit many jobs in one request (admitted atomically or rejected with 429)."""
        payload: Dict = {"jobs": [{"job": job.to_dict()} for job in jobs], "priority": priority}
        if self.client_id:
            payload["client"] = self.client_id
        data = self._request("POST", "/v1/batch", payload)
        return [RemoteJob(self, entry) for entry in data.get("jobs", [])]

    # -- job inspection -------------------------------------------------------

    def job(self, job_id: str, *, wait: Optional[float] = None) -> Dict:
        """The full status dict of a job; ``wait`` long-polls for a terminal state."""
        path = f"/v1/jobs/{job_id}"
        if wait is not None:
            path += "?" + urlencode({"wait": wait})
        timeout = None if wait is None else max(self.timeout, wait + 10.0)
        return self._request("GET", path, timeout=timeout)

    def jobs(self) -> List[Dict]:
        """Summaries of every job the server currently remembers."""
        return self._request("GET", "/v1/jobs").get("jobs", [])

    def trace(self, job_id: str, *, wait: Optional[float] = None) -> Dict:
        """The job's span tree from ``GET /v1/jobs/{id}/trace``.

        Returns ``{"id", "state", "trace_id", "spans": [...]}``; the spans cover the
        server's admission/queue-wait bookkeeping plus — for jobs that actually executed
        with tracing on — the worker's per-pass tree.
        """
        path = f"/v1/jobs/{job_id}/trace"
        if wait is not None:
            path += "?" + urlencode({"wait": wait})
        timeout = None if wait is None else max(self.timeout, wait + 10.0)
        return self._request("GET", path, timeout=timeout)

    def result(self, job_id: str, *, timeout: Optional[float] = 300.0) -> TranspileResult:
        """Block until the job finishes and return its :class:`TranspileResult`.

        Raises :class:`JobFailed` (with the worker traceback) or :class:`JobCancelled`
        for unsuccessful terminal states, and :class:`ServerError` on timeout.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        status = self.job(job_id)
        while status["state"] in ("queued", "running"):
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                raise ServerError(f"timed out waiting for job {job_id}")
            step = 30.0 if remaining is None else max(0.1, min(30.0, remaining))
            status = self.job(job_id, wait=step)
        return self._result_from_status(status)

    @staticmethod
    def _result_from_status(status: Dict) -> TranspileResult:
        state = status["state"]
        if state == "failed":
            error = status.get("error", {})
            raise JobFailed(
                f"job {status.get('id')} failed: "
                f"{error.get('exc_type', 'Exception')}: {error.get('message', '')}",
                exc_type=error.get("exc_type", ""),
                traceback=error.get("traceback", ""),
            )
        if state == "cancelled":
            raise JobCancelled(f"job {status.get('id')} was cancelled")
        if state != "done":
            raise ServerError(f"job {status.get('id')} is still {state}")
        return TranspileResult.from_dict(status["result"])

    def events(self, job_id: str) -> Iterator[Dict]:
        """Stream the job's state transitions live (blocks until the terminal event).

        Yields dicts of the form ``{"id", "state", "at", "detail"}``; the ``done``
        event's detail includes the pass-timing breakdown.
        """
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            headers = {"X-Repro-Client": self.client_id} if self.client_id else {}
            connection.request("GET", f"/v1/jobs/{job_id}/events", headers=headers)
            response = connection.getresponse()
            if response.status >= 400:
                body = response.read()
                try:
                    message = json.loads(body)["error"]["message"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    message = f"HTTP {response.status}"
                raise ServerError(message, status=response.status)
            while True:
                try:
                    line = response.readline()
                except (TimeoutError, OSError) as exc:
                    # A long-running pass can leave the stream quiet past the socket
                    # timeout; surface that as a ServerError, not a raw socket error.
                    raise ServerError(
                        f"event stream for job {job_id} stalled for more than "
                        f"{self.timeout:.0f}s: {exc}"
                    ) from exc
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            connection.close()

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; ``False`` when the job was already running/terminal."""
        try:
            data = self._request("POST", f"/v1/jobs/{job_id}/cancel")
        except ServerError as exc:
            if exc.status == 409:
                return False
            raise
        return bool(data.get("cancelled", False))

    # -- service metadata -----------------------------------------------------

    def healthz(self) -> Dict:
        return self._request("GET", "/healthz")

    def targets(self) -> List[Dict]:
        return self._request("GET", "/v1/targets").get("targets", [])

    def methods(self) -> Dict:
        return self._request("GET", "/v1/methods")

    def metrics_text(self) -> str:
        """The raw Prometheus text page (parse with ``repro.server.parse_metric``)."""
        status, body, _headers = self._raw_request_with_retries("GET", "/metrics")
        if status != 200:
            raise ServerError(f"GET /metrics returned HTTP {status}", status=status)
        return body.decode("utf-8")


class RemoteJob:
    """Handle to one submitted job: id, fingerprint, and result/event accessors."""

    def __init__(
        self, client: ReproClient, summary: Dict, *, client_spans: Optional[List[Dict]] = None
    ) -> None:
        self._client = client
        self.id: str = summary["id"]
        self.fingerprint: str = summary.get("fingerprint", "")
        self.resubmitted: bool = bool(summary.get("resubmitted", False))
        self._summary = summary
        #: Client-side spans of the submission (non-empty only when tracing was on).
        self._client_spans: List[Dict] = list(client_spans or [])

    def status(self) -> Dict:
        return self._client.job(self.id)

    @property
    def state(self) -> str:
        return self.status()["state"]

    def result(self, timeout: Optional[float] = 300.0) -> TranspileResult:
        """Block for the result; when traced at submit, merges the full span tree.

        ``result.trace`` then holds client submit → server job/queue-wait → worker
        execution (with one span per pass instance) — the complete cross-process tree.
        """
        result = self._client.result(self.id, timeout=timeout)
        if self._client_spans:
            try:
                remote = self._client.trace(self.id)
                result.trace = self._client_spans + list(remote.get("spans", []))
            except ServerError:
                # The trace is best-effort telemetry; the compile result stands alone.
                result.trace = list(self._client_spans)
        return result

    def trace(self, *, wait: Optional[float] = None) -> Dict:
        return self._client.trace(self.id, wait=wait)

    def events(self) -> Iterator[Dict]:
        return self._client.events(self.id)

    def cancel(self) -> bool:
        return self._client.cancel(self.id)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RemoteJob(id={self.id!r}, fingerprint={self.fingerprint[:12]!r}...)"


def transpile_remote(
    circuit: Union[QuantumCircuit, str],
    target: Union[Target, CouplingMap, None] = None,
    options: Optional[TranspileOptions] = None,
    *,
    url: str = "http://127.0.0.1:8000",
    timeout: float = 300.0,
    **overrides,
) -> TranspileResult:
    """One-shot convenience: submit, wait, and return the result (remote ``transpile``)."""
    client = ReproClient(url)
    handle = client.submit(circuit, target, options, **overrides)
    return handle.result(timeout=timeout)

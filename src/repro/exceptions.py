"""Exception hierarchy for the repro package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class CircuitError(ReproError):
    """Raised for malformed circuit construction or manipulation."""


class QASMError(ReproError):
    """Raised when OpenQASM text cannot be parsed or emitted."""


class CouplingError(ReproError):
    """Raised for invalid coupling map construction or queries."""


class CalibrationError(ReproError):
    """Raised when device calibration data is missing or inconsistent."""


class ScheduleError(ReproError):
    """Raised when a circuit cannot be lowered to a timed schedule."""


class TranspilerError(ReproError):
    """Raised when a transpiler pass cannot complete."""


class SynthesisError(ReproError):
    """Raised when unitary synthesis fails."""


class SimulatorError(ReproError):
    """Raised when a circuit cannot be simulated."""

"""Command-line front end of the batch transpilation service (``python -m repro``).

Subcommands
-----------
* ``transpile`` — compile one OpenQASM 2.0 file for a device; emits routed QASM and an
  optional metrics JSON.
* ``table`` — regenerate a Tables I-IV style baseline-vs-treatment report through the
  batch executor (text, CSV and JSON outputs).
* ``ablation`` — regenerate a Figure 9 style optimization-combination panel.
* ``noise`` — regenerate the Figure 11 noise/success-rate experiment.
* ``schedule`` — lower a compiled circuit to a timed schedule and inspect the per-qubit
  timeline, critical path and idle windows.
* ``methods`` — list the registered routing methods, schedule modes and preset
  optimization levels.
* ``cache`` — inspect or clear an on-disk result cache directory (``stats`` emits JSON).
* ``serve`` — run the online transpilation server (:mod:`repro.server`).
* ``fleet`` — run a multi-node transpile fleet role (:mod:`repro.fleet`):
  ``coordinator`` (placement + proxy front door) or ``worker`` (one node).
* ``submit`` — compile a circuit remotely through a running server (:mod:`repro.client`).
* ``trace`` — pretty-print a trace file written by ``--trace`` / ``REPRO_TRACE``
  (span tree plus a self-time ranking).

Routing choices everywhere are derived from the routing-method registry, so third-party
methods registered via ``repro.transpiler.registry`` (or the ``REPRO_ROUTING_PLUGINS``
environment variable) are selectable by name.  Every experiment subcommand accepts
``--workers N`` (process-pool fan-out) and ``--cache-dir DIR`` (persistent
content-addressed result cache); a warm rerun of the same command performs zero new
transpile calls.  The default benchmark selection is the quick subset used by the
benchmark harness; pass ``--full`` for the paper's complete lists.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from .. import __version__
from ..benchlib.suite import benchmark_names, table_benchmarks
from ..circuit import qasm
from ..core.options import LEVEL_DESCRIPTIONS, OPTIMIZATION_LEVELS, ROUTE_COSTS, TranspileOptions
from ..exceptions import ReproError
from ..hardware.target import Target
from ..schedule.modes import SCHEDULE_MODES, available_schedule_modes
from ..transpiler.registry import available_routings, registered_methods
from .cache import ResultCache
from .executor import BatchTranspiler
from .jobs import JobOutcome, TranspileJob

#: Quick default benchmark selections (mirrors ``benchmarks/bench_config.py``).
DEFAULT_TABLE_NAMES = [
    "grover_n4", "grover_n6", "vqe_n8", "bv_n19", "qft_n15", "qpe_n9", "adder_n10",
]
DEFAULT_ABLATION_NAMES = ["grover_n4", "adder_n10"]

CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Batch transpilation service for the NASSC (HPCA'22) reproduction.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser, *, workers: bool = True) -> None:
        if workers:
            p.add_argument("--workers", "-w", type=int, default=1,
                           help="worker processes for the batch executor (default: 1)")
        p.add_argument("--cache-dir", default=os.environ.get(CACHE_DIR_ENV),
                       help="on-disk result cache directory (env: REPRO_CACHE_DIR)")
        p.add_argument("--progress", action="store_true",
                       help="print per-job progress to stderr")

    def add_device(p: argparse.ArgumentParser, default: str = "montreal") -> None:
        p.add_argument("--device", "-d", default=default,
                       help="device topology: montreal | linear | grid | full "
                            f"(default: {default})")
        p.add_argument("--num-qubits", type=int, default=25,
                       help="device size for linear/grid/full topologies (default: 25)")

    def add_schedule_opts(p: argparse.ArgumentParser) -> None:
        p.add_argument("--schedule", choices=available_schedule_modes(), default=None,
                       help="also lower the result to a timed schedule "
                            "(asap or alap; implies a calibrated device)")
        p.add_argument("--route-cost", choices=ROUTE_COSTS, default="hops",
                       help="SWAP cost model for routing: unit hops, or nanoseconds of "
                            "inserted SWAP time (default: hops)")

    routings = available_routings()
    routed = tuple(name for name in routings if name != "none")

    p = sub.add_parser("transpile", help="compile one OpenQASM 2.0 file for a device")
    p.add_argument("input", help="input OpenQASM 2.0 file ('-' for stdin)")
    add_device(p)
    p.add_argument("--routing", "-r", default="nassc", choices=routings,
                   help="routing method (from the registry; default: nassc)")
    p.add_argument("--level", "-O", default="O1", choices=OPTIMIZATION_LEVELS,
                   help="preset optimization level (default: O1, the paper pipeline)")
    p.add_argument("--seed", type=int, default=0, help="routing seed (default: 0)")
    p.add_argument("--best-of", type=int, default=None, metavar="K",
                   help="route K independently-seeded ensemble trials and keep the best "
                        "(default: 1, or 4 at -O O3)")
    p.add_argument("--noise-aware", action="store_true",
                   help="use the HA distance matrix built from a synthetic calibration")
    add_schedule_opts(p)
    p.add_argument("--stream", action="store_true",
                   help="stream the compile: chunked QASM ingest, windowed routing, "
                        "incremental routed-QASM emission in O(window) memory "
                        "(implies the -O O0 routing-only pipeline; bypasses the cache)")
    p.add_argument("--window-gates", type=int, default=None, metavar="N",
                   help="live routing window for --stream (default: 4096)")
    p.add_argument("--chunk-gates", type=int, default=None, metavar="N",
                   help="gates per emitted chunk for --stream (default: 1024)")
    p.add_argument("--out", "-o", default="-", help="routed QASM output path (default: stdout)")
    p.add_argument("--metrics", help="write a metrics JSON to this path ('-' for stdout)")
    p.add_argument("--trace", metavar="PATH",
                   help="trace the compile and write a Chrome trace-event JSON here")
    add_common(p, workers=False)

    p = sub.add_parser(
        "schedule",
        help="lower a compiled circuit to a timed schedule and inspect it",
    )
    p.add_argument("input", help="input OpenQASM 2.0 file ('-' for stdin)")
    add_device(p)
    p.add_argument("--routing", "-r", default="nassc", choices=routed,
                   help="routing method used to compile first (default: nassc)")
    p.add_argument("--level", "-O", default="O1", choices=OPTIMIZATION_LEVELS,
                   help="preset optimization level (default: O1)")
    p.add_argument("--seed", type=int, default=0, help="routing seed (default: 0)")
    p.add_argument("--mode", choices=available_schedule_modes(), default="asap",
                   help="scheduling discipline (default: asap)")
    p.add_argument("--route-cost", choices=ROUTE_COSTS, default="hops",
                   help="SWAP cost model for the compile (default: hops)")
    p.add_argument("--json", action="store_true",
                   help="emit the schedule as JSON instead of the text views")
    add_common(p, workers=False)

    p = sub.add_parser("table", help="regenerate a Tables I-IV style report")
    add_device(p)
    p.add_argument("--routing", "-r", default="nassc", choices=routed,
                   help="treatment method compared against the baseline (default: nassc)")
    p.add_argument("--baseline", default="sabre", choices=routed,
                   help="baseline method (default: sabre)")
    p.add_argument("--seeds", type=int, nargs="+", default=[0],
                   help="routing seeds to average over (default: 0)")
    p.add_argument("--benchmarks", nargs="+", metavar="NAME",
                   help=f"benchmark subset (default: quick set; known: {', '.join(benchmark_names())})")
    p.add_argument("--full", action="store_true",
                   help="run the paper's complete benchmark list (slow)")
    p.add_argument("--depth", action="store_true", help="also print the depth (Table II) report")
    p.add_argument("--schedule", choices=available_schedule_modes(), default=None,
                   help="schedule every compile and add a critical-path duration report")
    p.add_argument("--csv", metavar="PATH", help="write the CNOT table as CSV")
    p.add_argument("--json", metavar="PATH", help="write the full result as JSON")
    add_common(p)

    p = sub.add_parser("ablation", help="regenerate a Figure 9 style ablation panel")
    add_device(p)
    p.add_argument("--baseline", default="sabre", choices=routed,
                   help="baseline method the combinations are compared against (default: sabre)")
    p.add_argument("--seeds", type=int, nargs="+", default=[0])
    p.add_argument("--benchmarks", nargs="+", metavar="NAME")
    p.add_argument("--full", action="store_true")
    p.add_argument("--json", metavar="PATH")
    add_common(p)

    p = sub.add_parser("noise", help="regenerate the Figure 11 noise experiment")
    p.add_argument("--methods", nargs="+", default=["sabre", "nassc"], choices=routed,
                   metavar="METHOD",
                   help="base routing methods, each run plain and noise-aware "
                        f"(choices: {', '.join(routed)}; default: sabre nassc)")
    p.add_argument("--shots", type=int, default=2048)
    p.add_argument("--realizations", type=int, default=64)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--benchmarks", nargs="+", metavar="NAME")
    p.add_argument("--json", metavar="PATH")
    add_common(p)

    sub.add_parser(
        "methods",
        help="list registered routing methods and preset optimization levels",
    )

    p = sub.add_parser("cache", help="inspect or clear an on-disk result cache")
    p.add_argument("action", choices=("stats", "clear"))
    p.add_argument("--cache-dir", default=os.environ.get(CACHE_DIR_ENV), required=False)

    p = sub.add_parser("serve", help="run the online transpilation server")
    p.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    p.add_argument("--port", type=int, default=8000,
                   help="bind port, 0 picks an ephemeral one (default: 8000)")
    p.add_argument("--workers", "-w", type=int, default=None,
                   help="worker pool size (default: all cores, capped at 8)")
    p.add_argument("--concurrency", type=int, default=None,
                   help="jobs in flight at once (default: the worker count)")
    p.add_argument("--queue-bound", type=int, default=256,
                   help="admission-control bound on queued+running jobs (default: 256)")
    p.add_argument("--cache-dir", default=os.environ.get(CACHE_DIR_ENV),
                   help="shared on-disk result cache directory (env: REPRO_CACHE_DIR)")
    p.add_argument("--threads", action="store_true",
                   help="execute jobs on threads instead of a process pool")

    p = sub.add_parser("fleet", help="run a multi-node transpile fleet role")
    fleet_sub = p.add_subparsers(dest="fleet_role", required=True, metavar="ROLE")

    fc = fleet_sub.add_parser(
        "coordinator", help="run the fleet coordinator (placement + proxy front door)"
    )
    fc.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    fc.add_argument("--port", type=int, default=8100,
                    help="bind port, 0 picks an ephemeral one (default: 8100)")
    fc.add_argument("--replicas", type=int, default=2,
                    help="ring owners per fingerprint for placement/peer fetch (default: 2)")
    fc.add_argument("--heartbeat-interval", type=float, default=2.0,
                    help="heartbeat cadence asked of worker nodes, seconds (default: 2.0)")
    fc.add_argument("--heartbeat-ttl", type=float, default=None,
                    help="heartbeat staleness before a node is dead "
                         "(default: 4x the interval)")

    fw = fleet_sub.add_parser(
        "worker", help="run one fleet worker node (a repro server with membership)"
    )
    fw.add_argument("--coordinator", required=True, metavar="URL",
                    help="coordinator base URL, e.g. http://127.0.0.1:8100")
    fw.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    fw.add_argument("--port", type=int, default=0,
                    help="bind port (default: 0 = ephemeral)")
    fw.add_argument("--node-id", default=None,
                    help="stable node identity on the hash ring (default: random)")
    fw.add_argument("--workers", "-w", type=int, default=None,
                    help="worker pool size (default: all cores, capped at 8)")
    fw.add_argument("--concurrency", type=int, default=None,
                    help="jobs in flight at once (default: the worker count)")
    fw.add_argument("--queue-bound", type=int, default=256,
                    help="admission-control bound on queued+running jobs (default: 256)")
    fw.add_argument("--cache-dir", default=os.environ.get(CACHE_DIR_ENV),
                    help="on-disk result cache directory (env: REPRO_CACHE_DIR)")
    fw.add_argument("--threads", action="store_true",
                    help="execute jobs on threads instead of a process pool")
    fw.add_argument("--peer-replicas", type=int, default=2,
                    help="ring owners consulted on a local cache miss (default: 2)")

    p = sub.add_parser("submit", help="compile a circuit through a running server")
    p.add_argument("input", help="input OpenQASM 2.0 file ('-' for stdin)")
    p.add_argument("--url", default=os.environ.get("REPRO_SERVER_URL", "http://127.0.0.1:8000"),
                   help="server base URL (env: REPRO_SERVER_URL; default: http://127.0.0.1:8000)")
    add_device(p)
    p.add_argument("--routing", "-r", default="nassc", choices=routings,
                   help="routing method (default: nassc)")
    p.add_argument("--level", "-O", default="O1", choices=OPTIMIZATION_LEVELS,
                   help="preset optimization level (default: O1)")
    p.add_argument("--seed", type=int, default=0, help="routing seed (default: 0)")
    p.add_argument("--best-of", type=int, default=None, metavar="K",
                   help="route K independently-seeded ensemble trials and keep the best "
                        "(default: 1, or 4 at -O O3; large K fans across server workers)")
    p.add_argument("--noise-aware", action="store_true",
                   help="use the HA distance matrix built from a synthetic calibration")
    add_schedule_opts(p)
    p.add_argument("--priority", type=int, default=0,
                   help="scheduling priority, higher runs first (default: 0)")
    p.add_argument("--timeout", type=float, default=300.0,
                   help="seconds to wait for the result (default: 300)")
    p.add_argument("--events", action="store_true",
                   help="stream job state transitions to stderr while waiting")
    p.add_argument("--out", "-o", default="-", help="routed QASM output path (default: stdout)")
    p.add_argument("--metrics", help="write a metrics JSON to this path ('-' for stdout)")
    p.add_argument("--trace", metavar="PATH",
                   help="trace the submission end-to-end (client, queue wait, worker, "
                        "per-pass spans) and write a Chrome trace-event JSON here")

    p = sub.add_parser("trace", help="inspect a trace file written by --trace / REPRO_TRACE")
    p.add_argument("file", help="Chrome trace JSON, {'spans': [...]} JSON, or JSONL file")
    p.add_argument("--top", type=int, default=5,
                   help="how many spans to list in the self-time ranking (default: 5)")

    return parser


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

def _make_executor(args: argparse.Namespace) -> BatchTranspiler:
    cache = ResultCache(directory=args.cache_dir) if args.cache_dir else ResultCache()
    workers = getattr(args, "workers", 1)
    return BatchTranspiler(max_workers=workers, cache=cache)


def _progress_callback(args: argparse.Namespace):
    if not getattr(args, "progress", False):
        return None

    def callback(done: int, total: int, outcome: JobOutcome) -> None:
        state = "cached" if outcome.from_cache else ("ok" if outcome.ok else "ERROR")
        label = outcome.job.name or outcome.fingerprint[:12]
        print(f"[{done}/{total}] {label}: {state}", file=sys.stderr)

    return callback


def _print_stats(executor: BatchTranspiler) -> None:
    stats = executor.stats
    print(
        f"cache: {stats.hits} memory hits, {stats.disk_hits} disk hits, "
        f"{stats.misses} misses ({stats.hit_rate:.0%} hit rate)",
        file=sys.stderr,
    )


def _selected_cases(args: argparse.Namespace, default_names: List[str]):
    if args.benchmarks:
        unknown = set(args.benchmarks) - set(benchmark_names())
        if unknown:
            raise SystemExit(f"unknown benchmarks: {', '.join(sorted(unknown))}")
        return table_benchmarks(names=list(args.benchmarks))
    if args.full:
        return table_benchmarks()
    return table_benchmarks(names=default_names)


def _write_text(path: Optional[str], text: str) -> None:
    if path is None:
        return
    if path == "-":
        print(text)
        return
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text if text.endswith("\n") else text + "\n")


def _load_input_circuit(args: argparse.Namespace):
    """Read the QASM input of `transpile`/`submit` ('-' = stdin, else a file path)."""
    if args.input == "-":
        return qasm.loads(sys.stdin.read())
    circuit = qasm.load(args.input)
    circuit.name = os.path.splitext(os.path.basename(args.input))[0]
    return circuit


def _target_and_options(args: argparse.Namespace):
    """Build the Target/Options pair shared by the local and remote compile commands."""
    schedule = getattr(args, "schedule", None) or getattr(args, "mode", None)
    route_cost = getattr(args, "route_cost", "hops")
    noise_aware = getattr(args, "noise_aware", False)
    # Scheduling and nanosecond routing both need gate durations, so they imply the
    # same synthetic calibration the noise-aware path attaches.
    calibrated = noise_aware or schedule is not None or route_cost == "ns"
    if args.routing == "none":
        target = Target()
    else:
        target = Target.from_topology(args.device, args.num_qubits, calibrated=calibrated)
    options = TranspileOptions(
        routing=args.routing,
        level=args.level,
        seed=args.seed,
        noise_aware=noise_aware,
        best_of=getattr(args, "best_of", None),
        schedule=schedule,
        route_cost=route_cost,
    )
    return target, options


def _emit_routed_qasm(args: argparse.Namespace, result) -> None:
    routed_qasm = qasm.dumps(result.circuit)
    if args.out == "-":
        sys.stdout.write(routed_qasm)
    else:
        _write_text(args.out, routed_qasm)


def _emit_metrics_json(args: argparse.Namespace, result, extra: dict) -> None:
    if not args.metrics:
        return
    payload = dict(extra)
    payload.update({
        "routing": result.routing,
        "level": result.level,
        "cx_count": result.cx_count,
        "depth": result.depth,
        "num_swaps": result.num_swaps,
        "transpile_time": result.transpile_time,
        "count_ops": result.count_ops(),
    })
    if result.schedule is not None:
        payload["schedule_mode"] = result.schedule.mode
        payload["schedule_duration_ns"] = result.schedule.duration
        payload["schedule_idle_ns"] = result.schedule.total_idle
    text = json.dumps(payload, indent=2)
    if args.metrics == "-":
        print(text)
    else:
        _write_text(args.metrics, text)


# ---------------------------------------------------------------------------
# Subcommand implementations
# ---------------------------------------------------------------------------

def _export_cli_trace(path: str, spans: List[dict]) -> None:
    from ..obs import COUNTERS, write_chrome_trace

    write_chrome_trace(path, spans, counters=COUNTERS.snapshot())
    print(f"trace: {len(spans)} spans -> {path}", file=sys.stderr)


def _cmd_transpile_stream(args: argparse.Namespace) -> int:
    import dataclasses
    from contextlib import ExitStack

    from ..core.stream import DEFAULT_CHUNK_GATES, DEFAULT_WINDOW_GATES, stream_to, transpile_stream

    if args.level not in ("O0", "O1"):
        print("error: --stream supports only the O0 routing pipeline (got "
              f"-O {args.level}); drop the level flag or pass -O O0", file=sys.stderr)
        return 2
    target, options = _target_and_options(args)
    options = dataclasses.replace(options, level="O0", layout_iterations=0)
    if args.input == "-":
        reader = qasm.QASMStreamReader(sys.stdin, name="stdin")
    else:
        reader = qasm.load_stream(args.input)
    chunks = transpile_stream(
        reader,
        target,
        options=options,
        window_gates=args.window_gates or DEFAULT_WINDOW_GATES,
        chunk_gates=args.chunk_gates or DEFAULT_CHUNK_GATES,
    )
    with ExitStack() as stack:
        if args.out == "-":
            sink = sys.stdout
        else:
            sink = stack.enter_context(open(args.out, "w", encoding="utf-8"))
        summary = stream_to(chunks, sink)
        sink.flush()
    if args.metrics:
        text = json.dumps(summary, indent=2)
        if args.metrics == "-":
            print(text)
        else:
            _write_text(args.metrics, text)
    return 0


def _cmd_transpile(args: argparse.Namespace) -> int:
    from contextlib import nullcontext

    from ..obs import Tracer, use_tracer

    if args.stream:
        return _cmd_transpile_stream(args)
    circuit = _load_input_circuit(args)
    target, options = _target_and_options(args)
    job = TranspileJob.from_circuit(circuit, target, options)
    executor = _make_executor(args)
    # ``transpile`` is single-worker and runs jobs in-process, so an ambient tracer
    # installed here is the one the pipeline's spans land on.  Export from the tracer
    # itself: the worker entry point strips span trees out of result payloads so they
    # never enter the content-addressed cache.
    tracer = Tracer(process="cli") if args.trace else None
    with use_tracer(tracer) if tracer is not None else nullcontext():
        outcome = executor.run([job], progress=_progress_callback(args))[0]
    if not outcome.ok:
        print(f"error: {outcome.error}", file=sys.stderr)
        return 1

    result = outcome.result
    if tracer is not None:
        if outcome.from_cache and not tracer.finished:
            print("trace: result served from cache, no passes ran", file=sys.stderr)
        _export_cli_trace(args.trace, tracer.span_dicts())
    _emit_routed_qasm(args, result)
    _emit_metrics_json(args, result, {
        "fingerprint": outcome.fingerprint,
        "from_cache": outcome.from_cache,
        "device": target.coupling_map.name if target.coupling_map else None,
    })
    _print_stats(executor)
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    from ..schedule import decoherence_exposure, format_critical_path, format_idle_summary, format_timeline

    circuit = _load_input_circuit(args)
    target, options = _target_and_options(args)
    job = TranspileJob.from_circuit(circuit, target, options)
    executor = _make_executor(args)
    outcome = executor.run([job], progress=_progress_callback(args))[0]
    if not outcome.ok:
        print(f"error: {outcome.error}", file=sys.stderr)
        return 1
    schedule = outcome.result.schedule
    assert schedule is not None  # options.schedule was set, so the stage ran
    if args.json:
        print(json.dumps(schedule.to_dict(), indent=2))
        return 0
    print(format_timeline(schedule))
    print()
    print(format_critical_path(schedule))
    print()
    report = decoherence_exposure(schedule, target.calibration) if target.calibration else None
    print(format_idle_summary(schedule, report))
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    from ..evaluation import (
        cnot_table_to_csv,
        format_cnot_table,
        format_depth_table,
        format_duration_table,
        run_table_experiment,
        table_result_to_json,
    )

    executor = _make_executor(args)
    result = run_table_experiment(
        args.device,
        cases=_selected_cases(args, DEFAULT_TABLE_NAMES),
        seeds=tuple(args.seeds),
        num_device_qubits=args.num_qubits,
        baseline=args.baseline,
        routing=args.routing,
        executor=executor,
        progress=_progress_callback(args),
        schedule=args.schedule,
    )
    print(format_cnot_table(result))
    if args.depth:
        print()
        print(format_depth_table(result))
    if args.schedule:
        print()
        print(format_duration_table(result))
    if args.csv:
        _write_text(args.csv, cnot_table_to_csv(result))
    if args.json:
        _write_text(args.json, table_result_to_json(result))
    _print_stats(executor)
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    from ..evaluation import ablation_rows_to_dict, format_ablation, run_optimization_ablation

    executor = _make_executor(args)
    rows = run_optimization_ablation(
        args.device,
        cases=_selected_cases(args, DEFAULT_ABLATION_NAMES),
        seeds=tuple(args.seeds),
        num_device_qubits=args.num_qubits,
        baseline=args.baseline,
        executor=executor,
        progress=_progress_callback(args),
    )
    print(format_ablation(rows, args.device))
    if args.json:
        _write_text(args.json, json.dumps(ablation_rows_to_dict(rows), indent=2))
    _print_stats(executor)
    return 0


def _cmd_noise(args: argparse.Namespace) -> int:
    from ..benchlib.suite import noise_benchmarks
    from ..evaluation import format_noise_experiment, noise_rows_to_dict, run_noise_experiment

    cases = noise_benchmarks()
    if args.benchmarks:
        wanted = set(args.benchmarks)
        cases = [case for case in cases if case.name in wanted]
        if not cases:
            known = ", ".join(case.name for case in noise_benchmarks())
            raise SystemExit(f"no matching noise benchmarks; known: {known}")

    executor = _make_executor(args)
    rows = run_noise_experiment(
        cases=cases,
        shots=args.shots,
        seed=args.seed,
        realizations=args.realizations,
        methods=tuple(args.methods),
        executor=executor,
        progress=_progress_callback(args),
    )
    print(format_noise_experiment(rows))
    if args.json:
        _write_text(args.json, json.dumps(noise_rows_to_dict(rows), indent=2))
    _print_stats(executor)
    return 0


def _cmd_methods(args: argparse.Namespace) -> int:
    print("routing methods:")
    for method in registered_methods():
        origin = "builtin" if method.builtin else "plugin"
        best_of = "best-of-N" if method.supports_best_of else "single"
        print(f"  {method.name:12s} [{origin}] [{best_of}]  {method.description}")
    print()
    print("schedule modes:")
    for mode, description in SCHEDULE_MODES.items():
        print(f"  {mode:12s} {description}")
    print()
    print("optimization levels:")
    for level in OPTIMIZATION_LEVELS:
        print(f"  {level:12s} {LEVEL_DESCRIPTIONS[level]}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    if not args.cache_dir:
        print("error: --cache-dir (or REPRO_CACHE_DIR) is required", file=sys.stderr)
        return 1
    cache = ResultCache(directory=args.cache_dir)
    if args.action == "stats":
        payload = {
            "directory": args.cache_dir,
            "exists": os.path.isdir(args.cache_dir),
            "disk_entries": cache.disk_entries(),
            "stats": cache.stats.to_dict(),
        }
        print(json.dumps(payload, indent=2))
        return 0
    removed = cache.clear()
    print(f"removed {removed} cached results from {args.cache_dir}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from ..server import ReproServer

    server = ReproServer(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        queue_bound=args.queue_bound,
        concurrency=args.concurrency,
        max_workers=args.workers,
        use_processes=not args.threads,
    )

    async def _main() -> None:
        host, port = await server.start()
        print(
            f"repro server listening on http://{host}:{port} "
            f"(pool={server.runner.pool_kind} x{server.runner.max_workers}, "
            f"concurrency={server.runner.concurrency}, queue bound={args.queue_bound}, "
            f"cache dir={args.cache_dir or 'memory only'})",
            file=sys.stderr,
        )
        loop = asyncio.get_running_loop()

        def _shutdown() -> None:
            print("shutting down (draining in-flight jobs)...", file=sys.stderr)
            loop.create_task(server.stop())

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, _shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover - non-Unix
                pass
        await server.serve_forever()

    asyncio.run(_main())
    return 0


def _serve_until_signalled(server, banner: str) -> int:
    """Run any AsyncHTTPServer until SIGINT/SIGTERM, with a bound-address banner."""
    import asyncio
    import signal

    async def _main() -> None:
        host, port = await server.start()
        print(banner.format(host=host, port=port), file=sys.stderr)
        loop = asyncio.get_running_loop()

        def _shutdown() -> None:
            print("shutting down...", file=sys.stderr)
            loop.create_task(server.stop())

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, _shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover - non-Unix
                pass
        await server.serve_forever()

    asyncio.run(_main())
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    if args.fleet_role == "coordinator":
        from ..fleet import FleetCoordinator

        coordinator = FleetCoordinator(
            host=args.host,
            port=args.port,
            replicas=args.replicas,
            heartbeat_interval=args.heartbeat_interval,
            heartbeat_ttl=args.heartbeat_ttl,
        )
        return _serve_until_signalled(
            coordinator,
            "repro fleet coordinator listening on http://{host}:{port} "
            f"(replicas={args.replicas}, heartbeat={args.heartbeat_interval}s)",
        )

    from ..fleet import FleetWorkerServer

    worker = FleetWorkerServer(
        args.coordinator,
        host=args.host,
        port=args.port,
        node_id=args.node_id,
        peer_replicas=args.peer_replicas,
        cache_dir=args.cache_dir,
        queue_bound=args.queue_bound,
        concurrency=args.concurrency,
        max_workers=args.workers,
        use_processes=not args.threads,
    )
    return _serve_until_signalled(
        worker,
        f"repro fleet worker {worker.node_id} listening on http://{{host}}:{{port}} "
        f"(coordinator={worker.coordinator_url})",
    )


def _cmd_submit(args: argparse.Namespace) -> int:
    import threading
    from contextlib import ExitStack

    from ..client import JobCancelled, JobFailed, ReproClient, ServerError
    from ..obs import Tracer, use_tracer

    circuit = _load_input_circuit(args)
    target, options = _target_and_options(args)
    client = ReproClient(args.url, timeout=max(60.0, args.timeout))
    stack = ExitStack()
    if args.trace:
        # An ambient tracer makes the client send a ``traceparent`` header; the result
        # then carries the merged client -> server -> worker -> per-pass span tree.
        stack.enter_context(use_tracer(Tracer(process="client")))
    try:
        with stack:
            handle = client.submit(circuit, target, options, priority=args.priority)
        if args.events:
            def _stream() -> None:
                try:
                    for event in handle.events():
                        print(f"[{handle.id}] {event['state']}", file=sys.stderr)
                except ServerError:  # pragma: no cover - stream is best-effort
                    pass

            watcher = threading.Thread(target=_stream, daemon=True)
            watcher.start()
        result = handle.result(timeout=args.timeout)
    except (JobFailed, JobCancelled) as exc:
        print(f"error: {exc}", file=sys.stderr)
        if getattr(exc, "traceback", ""):
            print(exc.traceback, file=sys.stderr)
        return 1
    except ServerError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    _emit_routed_qasm(args, result)
    if args.trace:
        _export_cli_trace(args.trace, result.trace)
    if args.metrics:
        try:
            from_cache = handle.status().get("from_cache", False)
        except ServerError:
            # The record may have been evicted (or the server restarted) after the
            # result arrived; the metrics are still worth emitting.
            from_cache = None
        _emit_metrics_json(args, result, {
            "job_id": handle.id,
            "fingerprint": handle.fingerprint,
            "from_cache": from_cache,
        })
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from ..obs import format_tree, load_trace_file, top_spans

    spans = load_trace_file(args.file)
    if not spans:
        print("error: no spans found in file", file=sys.stderr)
        return 1
    print(format_tree(spans))
    ranked = top_spans(spans, n=args.top)
    if ranked:
        print(f"top {len(ranked)} spans by self-time:")
        for span, self_time in ranked:
            print(f"  {self_time * 1000.0:9.3f} ms  {span.get('name', '?')}")
    return 0


_COMMANDS = {
    "transpile": _cmd_transpile,
    "schedule": _cmd_schedule,
    "trace": _cmd_trace,
    "table": _cmd_table,
    "ablation": _cmd_ablation,
    "noise": _cmd_noise,
    "methods": _cmd_methods,
    "cache": _cmd_cache,
    "serve": _cmd_serve,
    "fleet": _cmd_fleet,
    "submit": _cmd_submit,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro`` and the ``repro`` console script."""
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ReproError, ValueError, OSError) as exc:
        # Expected operational failures (bad device name, unreadable/malformed input
        # file, ...) get a clean one-line diagnostic instead of a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

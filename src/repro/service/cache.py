"""Content-addressed result cache for the batch transpilation service.

The cache maps a :meth:`TranspileJob.fingerprint` to the serialised
(:meth:`TranspileResult.to_dict`) payload of its result.  Two layers:

* an in-memory LRU bounded by ``max_entries`` (the hot set), and
* an optional on-disk JSON store (one ``<fingerprint>.json`` file per entry) that
  survives process restarts and is shared between concurrent runs.

A memory miss falls through to disk and promotes the entry back into memory.  All
operations are thread-safe and hit/miss/store/eviction counters are kept in
:class:`CacheStats` so callers (and tests) can verify that warm reruns perform zero new
transpile calls.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import uuid
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from ..obs.counters import COUNTERS


@dataclass
class CacheStats:
    """Hit/miss counters of a :class:`ResultCache`."""

    hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0

    @property
    def total_hits(self) -> int:
        return self.hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.total_hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.total_hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> Dict:
        return {
            "hits": self.hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def reset(self) -> None:
        self.hits = self.disk_hits = self.misses = self.stores = self.evictions = 0


class ResultCache:
    """LRU + optional-disk store of serialised transpile results, keyed by fingerprint."""

    def __init__(self, max_entries: int = 1024, directory: Optional[str] = None) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = max_entries
        self.directory = directory
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, Dict]" = OrderedDict()
        self._lock = threading.Lock()
        self._warned_write_failure = False
        # The directory is created lazily on the first write, so read-only consumers
        # (e.g. ``repro cache stats``) never create it as a side effect.

    # -- core operations ----------------------------------------------------

    def get(self, fingerprint: str) -> Optional[Dict]:
        """The cached result payload for a fingerprint, or ``None`` on a miss."""
        with self._lock:
            payload = self._entries.get(fingerprint)
            if payload is not None:
                self._entries.move_to_end(fingerprint)
                self.stats.hits += 1
                COUNTERS.inc("cache.result.hits")
                return payload
            payload = self._read_disk(fingerprint)
            if payload is not None:
                self.stats.disk_hits += 1
                COUNTERS.inc("cache.result.hits")
                COUNTERS.inc("cache.result.disk_hits")
                self._insert(fingerprint, payload)
                return payload
            self.stats.misses += 1
            COUNTERS.inc("cache.result.misses")
            return None

    def put(self, fingerprint: str, payload: Dict) -> None:
        """Store a result payload under its fingerprint (memory, and disk if enabled)."""
        with self._lock:
            self.stats.stores += 1
            COUNTERS.inc("cache.result.stores")
            self._insert(fingerprint, payload)
            self._write_disk(fingerprint, payload)

    def contains(self, fingerprint: str) -> bool:
        """True if the fingerprint is cached (without touching the hit/miss counters)."""
        with self._lock:
            return fingerprint in self._entries or (
                self._disk_path(fingerprint) is not None
                and os.path.exists(self._disk_path(fingerprint))
            )

    def clear(self, *, disk: bool = True) -> int:
        """Drop every entry; returns how many (memory + disk files) were removed."""
        with self._lock:
            removed = len(self._entries)
            self._entries.clear()
            if disk and self.directory and os.path.isdir(self.directory):
                for entry in os.listdir(self.directory):
                    if entry.endswith(".json"):
                        try:
                            os.remove(os.path.join(self.directory, entry))
                            removed += 1
                        except OSError:
                            pass
            return removed

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def disk_entries(self) -> int:
        """Number of entries currently stored on disk (0 when disk is disabled)."""
        if not self.directory or not os.path.isdir(self.directory):
            return 0
        return sum(1 for entry in os.listdir(self.directory) if entry.endswith(".json"))

    # -- internals ----------------------------------------------------------

    def _insert(self, fingerprint: str, payload: Dict) -> None:
        self._entries[fingerprint] = payload
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def _disk_path(self, fingerprint: str) -> Optional[str]:
        if not self.directory:
            return None
        return os.path.join(self.directory, f"{fingerprint}.json")

    def _read_disk(self, fingerprint: str) -> Optional[Dict]:
        path = self._disk_path(fingerprint)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None  # treat a corrupt/unreadable entry as a miss

    def _write_disk(self, fingerprint: str, payload: Dict) -> None:
        path = self._disk_path(fingerprint)
        if path is None:
            return
        # The temp name must be unique per *writer*, not just per process: the server,
        # the batch CLI, and multiple cache instances inside one process may all write
        # the same fingerprint concurrently.  uuid4 makes collisions impossible, and
        # os.replace keeps the publish atomic, so readers only ever see complete JSON.
        tmp_path = f"{path}.tmp.{os.getpid()}.{uuid.uuid4().hex[:8]}"
        try:
            os.makedirs(self.directory, exist_ok=True)
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_path, path)  # atomic publish so readers never see partial JSON
        except OSError as exc:
            # Disk persistence is best-effort (the in-memory layer still works), but an
            # unwritable cache directory must not fail silently: warn once so the user
            # learns why warm reruns keep recomputing.
            if not self._warned_write_failure:
                self._warned_write_failure = True
                print(
                    f"warning: result cache directory {self.directory!r} is not "
                    f"writable ({exc}); results will not persist to disk",
                    file=sys.stderr,
                )
            try:
                os.remove(tmp_path)
            except OSError:
                pass

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ResultCache(entries={len(self._entries)}, max={self.max_entries}, "
            f"dir={self.directory!r}, stats={self.stats.to_dict()})"
        )

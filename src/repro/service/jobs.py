"""Job specifications for the batch transpilation service.

A :class:`TranspileJob` is a fully self-contained, JSON-serialisable description of one
``transpile()`` call: the circuit (as OpenQASM 2.0 text), the device coupling map, the
routing method and its configuration, and the seed.  Because the spec is pure data it can
be shipped to worker processes, written to disk, and — crucially — content-addressed:
:meth:`TranspileJob.fingerprint` hashes the canonical JSON form, so two jobs that would
produce byte-identical results share one fingerprint regardless of where or when they were
built.  The fingerprint is the key of the service's result cache.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence, Tuple

from ..circuit import qasm
from ..circuit.circuit import QuantumCircuit
from ..core.nassc import NASSCConfig
from ..core.pipeline import PIPELINE_VERSION, TranspileResult, transpile
from ..hardware.calibration import DeviceCalibration
from ..hardware.coupling import CouplingMap

#: Bump when the job *schema* changes in a way that invalidates cached results.  The
#: fingerprint additionally folds in :data:`repro.core.pipeline.PIPELINE_VERSION`, so
#: pipeline refactors invalidate the cache without touching the service layer.
FINGERPRINT_VERSION = 2


@dataclass(frozen=True)
class TranspileJob:
    """One unit of work for the batch transpiler (a single ``transpile()`` call).

    All fields are plain JSON-compatible data; use :meth:`from_circuit` to build a job from
    live objects.  ``name`` is a display label only and does not enter the fingerprint, so
    identically-configured jobs share cache entries whatever they are called.
    """

    qasm: str
    routing: str = "sabre"
    coupling_map: Optional[Dict] = None  # CouplingMap.to_dict() form
    seed: Optional[int] = None
    nassc_config: Optional[Tuple[bool, bool, bool]] = None
    noise_aware: bool = False
    calibration: Optional[Dict] = None  # DeviceCalibration.to_dict() form
    extended_set_size: int = 20
    extended_set_weight: float = 0.5
    layout_iterations: int = 2
    final_basis: str = "zsx"
    name: str = ""

    # -- construction -------------------------------------------------------

    @classmethod
    def from_circuit(
        cls,
        circuit: QuantumCircuit,
        coupling_map: Optional[CouplingMap] = None,
        *,
        routing: str = "sabre",
        seed: Optional[int] = None,
        nassc_config: Optional[NASSCConfig] = None,
        calibration: Optional[DeviceCalibration] = None,
        noise_aware: bool = False,
        name: Optional[str] = None,
        **kwargs,
    ) -> "TranspileJob":
        """Build a job spec from live circuit/device objects (mirrors ``transpile()``)."""
        return cls(
            qasm=qasm.dumps(circuit),
            routing=routing,
            coupling_map=coupling_map.to_dict() if coupling_map else None,
            seed=seed,
            nassc_config=nassc_config.as_tuple() if nassc_config else None,
            noise_aware=noise_aware,
            calibration=calibration.to_dict() if calibration else None,
            name=name if name is not None else (circuit.name or ""),
            **kwargs,
        )

    # -- content addressing -------------------------------------------------

    def content_dict(self) -> Dict:
        """The canonical content of the job (everything that influences the result)."""
        return {
            "version": FINGERPRINT_VERSION,
            "pipeline_version": PIPELINE_VERSION,
            "qasm": self.qasm,
            "routing": self.routing,
            "coupling_map": self.coupling_map,
            "seed": self.seed,
            "nassc_config": list(self.nassc_config) if self.nassc_config else None,
            "noise_aware": self.noise_aware,
            "calibration": self.calibration,
            "extended_set_size": self.extended_set_size,
            "extended_set_weight": self.extended_set_weight,
            "layout_iterations": self.layout_iterations,
            "final_basis": self.final_basis,
        }

    def fingerprint(self) -> str:
        """Deterministic content hash of the job (sha256 over canonical JSON).

        Stable across processes and machines: the hash covers only the canonical JSON
        serialisation, never object identities, and ``name`` is excluded.
        """
        canonical = json.dumps(self.content_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict:
        data = self.content_dict()
        del data["version"]
        del data["pipeline_version"]
        data["name"] = self.name
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "TranspileJob":
        nassc = data.get("nassc_config")
        return cls(
            qasm=data["qasm"],
            routing=data.get("routing", "sabre"),
            coupling_map=data.get("coupling_map"),
            seed=data.get("seed"),
            nassc_config=tuple(nassc) if nassc else None,
            noise_aware=data.get("noise_aware", False),
            calibration=data.get("calibration"),
            extended_set_size=data.get("extended_set_size", 20),
            extended_set_weight=data.get("extended_set_weight", 0.5),
            layout_iterations=data.get("layout_iterations", 2),
            final_basis=data.get("final_basis", "zsx"),
            name=data.get("name", ""),
        )

    def with_name(self, name: str) -> "TranspileJob":
        return replace(self, name=name)

    # -- execution ----------------------------------------------------------

    def build_circuit(self) -> QuantumCircuit:
        circuit = qasm.loads(self.qasm)
        if self.name:
            circuit.name = self.name
        return circuit

    def run(self) -> TranspileResult:
        """Execute the job in the current process and return the live result."""
        coupling = CouplingMap.from_dict(self.coupling_map) if self.coupling_map else None
        calibration = (
            DeviceCalibration.from_dict(self.calibration) if self.calibration else None
        )
        config = NASSCConfig(*self.nassc_config) if self.nassc_config else None
        return transpile(
            self.build_circuit(),
            coupling,
            routing=self.routing,
            seed=self.seed,
            nassc_config=config,
            calibration=calibration,
            noise_aware=self.noise_aware,
            extended_set_size=self.extended_set_size,
            extended_set_weight=self.extended_set_weight,
            layout_iterations=self.layout_iterations,
            final_basis=self.final_basis,
        )


@dataclass(frozen=True)
class JobError:
    """Structured record of a job that raised instead of producing a result."""

    fingerprint: str
    job_name: str
    exc_type: str
    message: str
    traceback: str = ""

    def to_dict(self) -> Dict:
        return {
            "fingerprint": self.fingerprint,
            "job_name": self.job_name,
            "exc_type": self.exc_type,
            "message": self.message,
            "traceback": self.traceback,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "JobError":
        return cls(
            fingerprint=data["fingerprint"],
            job_name=data.get("job_name", ""),
            exc_type=data.get("exc_type", "Exception"),
            message=data.get("message", ""),
            traceback=data.get("traceback", ""),
        )

    def __str__(self) -> str:
        label = self.job_name or self.fingerprint[:12]
        return f"{label}: {self.exc_type}: {self.message}"


@dataclass
class JobOutcome:
    """The terminal state of one submitted job: a result, or a structured error."""

    job: TranspileJob
    fingerprint: str
    result: Optional[TranspileResult] = None
    error: Optional[JobError] = None
    from_cache: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self) -> TranspileResult:
        """The result, raising a ``RuntimeError`` if the job failed."""
        if self.error is not None:
            raise RuntimeError(f"transpile job failed -- {self.error}")
        assert self.result is not None
        return self.result


def jobs_for_seeds(
    circuit: QuantumCircuit,
    coupling_map: Optional[CouplingMap],
    seeds: Sequence[int],
    **kwargs,
) -> list:
    """Convenience fan-out: one job per seed (the paper averages over routing seeds)."""
    return [
        TranspileJob.from_circuit(circuit, coupling_map, seed=seed, **kwargs)
        for seed in seeds
    ]

"""Job specifications for the batch transpilation service.

A :class:`TranspileJob` is a fully self-contained, JSON-serialisable description of one
``transpile()`` call: the circuit (as OpenQASM 2.0 text), the device
:class:`~repro.hardware.target.Target`, and the
:class:`~repro.core.options.TranspileOptions`.  Because the spec is pure data it can be
shipped to worker processes, written to disk, and — crucially — content-addressed:
:meth:`TranspileJob.fingerprint` hashes the canonical JSON form built from the target's
and the options' ``content_dict()``, so two jobs that would produce byte-identical
results share one fingerprint regardless of where or when they were built.  The
fingerprint is the key of the service's result cache.

The job's routing method is validated against the routing registry at construction, so a
typo'd or unregistered method fails before any work is scheduled; third-party methods
registered via ``register_routing`` (or the ``REPRO_ROUTING_PLUGINS`` module path) pass
the same validation and run through the same executor and cache.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence, Tuple, Union

from ..circuit import qasm
from ..circuit.circuit import QuantumCircuit
from ..core.nassc import NASSCConfig
from ..core.options import TranspileOptions, normalize_level
from ..core.pipeline import PIPELINE_VERSION, TranspileResult, transpile
from ..hardware.calibration import DeviceCalibration
from ..hardware.coupling import CouplingMap
from ..hardware.target import Target
from ..transpiler.registry import get_routing

#: Bump when the job *schema* changes in a way that invalidates cached results.  Version 3
#: switched the canonical content to the Target/TranspileOptions ``content_dict()`` forms;
#: version 4 added the schedule mode and routing cost model to the options content.
#: The fingerprint additionally folds in :data:`repro.core.pipeline.PIPELINE_VERSION`, so
#: pipeline refactors invalidate the cache without touching the service layer.
FINGERPRINT_VERSION = 4


@dataclass(frozen=True)
class TranspileJob:
    """One unit of work for the batch transpiler (a single ``transpile()`` call).

    All fields are plain JSON-compatible data; use :meth:`from_circuit` to build a job
    from live objects (it accepts a :class:`Target` + :class:`TranspileOptions` pair or
    the legacy flat kwargs).  ``name`` is a display label only and does not enter the
    fingerprint, so identically-configured jobs share cache entries whatever they are
    called.
    """

    qasm: str
    routing: str = "sabre"
    level: str = "O1"
    coupling_map: Optional[Dict] = None  # CouplingMap.to_dict() form
    seed: Optional[int] = None
    nassc_config: Optional[Tuple[bool, bool, bool]] = None
    noise_aware: bool = False
    calibration: Optional[Dict] = None  # DeviceCalibration.to_dict() form
    extended_set_size: int = 20
    extended_set_weight: float = 0.5
    layout_iterations: int = 2
    final_basis: str = "zsx"
    #: Best-of-N ensemble trial count (None = preset default; see TranspileOptions).
    best_of: Optional[int] = None
    #: Schedule mode ("asap"/"alap") or None for no schedule stage.
    schedule: Optional[str] = None
    #: Routing cost model ("hops" or "ns").
    route_cost: str = "hops"
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "level", normalize_level(self.level))
        get_routing(self.routing)  # validate against the registry; raises TranspilerError

    # -- construction -------------------------------------------------------

    @classmethod
    def from_circuit(
        cls,
        circuit: QuantumCircuit,
        target: Union[Target, CouplingMap, None] = None,
        options: Optional[TranspileOptions] = None,
        *,
        routing: Optional[str] = None,
        level: Optional[str] = None,
        seed: Optional[int] = None,
        nassc_config: Optional[NASSCConfig] = None,
        calibration: Optional[DeviceCalibration] = None,
        noise_aware: Optional[bool] = None,
        name: Optional[str] = None,
        coupling_map: Optional[CouplingMap] = None,
        **kwargs,
    ) -> "TranspileJob":
        """Build a job spec from live objects (mirrors ``transpile()``'s signature).

        ``target`` may be a :class:`Target`, a bare :class:`CouplingMap` (legacy —
        the historical ``coupling_map=`` keyword also still works), or ``None``;
        keyword overrides win over the corresponding ``options`` fields.
        """
        if coupling_map is not None:
            if target is not None:
                raise TypeError("pass either target or the legacy coupling_map, not both")
            target = coupling_map
        if isinstance(target, Target):
            if calibration is not None:
                raise TypeError("pass calibration on the Target, not as a kwarg")
            if "final_basis" in kwargs:
                raise TypeError("pass final_basis on the Target, not as a kwarg")
            device, device_calibration = target.coupling_map, target.calibration
            final_basis = target.final_basis
        else:
            device, device_calibration = target, calibration
            final_basis = kwargs.pop("final_basis", "zsx")

        opts = options if options is not None else TranspileOptions()
        overrides = {
            key: value
            for key, value in {
                "routing": routing, "level": level, "seed": seed,
                "nassc_config": nassc_config, "noise_aware": noise_aware,
            }.items()
            if value is not None
        }
        for knob in ("extended_set_size", "extended_set_weight", "layout_iterations",
                     "best_of", "schedule", "route_cost"):
            if knob in kwargs:
                overrides[knob] = kwargs.pop(knob)
        if overrides:
            opts = opts.replace(**overrides)
        if kwargs:
            raise TypeError(
                f"from_circuit() got unexpected keyword arguments: {sorted(kwargs)}"
            )

        return cls.from_spec(
            qasm.dumps(circuit),
            Target(
                coupling_map=device,
                calibration=device_calibration,
                final_basis=final_basis,
            ),
            opts,
            name=name if name is not None else (circuit.name or ""),
        )

    @classmethod
    def from_spec(
        cls,
        qasm_text: str,
        target: Optional[Target] = None,
        options: Optional[TranspileOptions] = None,
        *,
        name: str = "",
    ) -> "TranspileJob":
        """Build a job from OpenQASM text plus a Target/Options pair (no circuit parse).

        The one place that flattens ``Target`` + ``TranspileOptions`` into the job's
        fields — the HTTP server's JSON submissions and any other text-first caller go
        through here so they cannot drift from :meth:`from_circuit` (which delegates to
        this after serialising the circuit).
        """
        target = target if target is not None else Target()
        opts = options if options is not None else TranspileOptions()
        return cls(
            qasm=qasm_text,
            routing=opts.routing,
            level=opts.level,
            coupling_map=target.coupling_map.to_dict() if target.coupling_map else None,
            seed=opts.seed,
            nassc_config=opts.nassc_config.as_tuple() if opts.nassc_config else None,
            noise_aware=opts.noise_aware,
            calibration=target.calibration.to_dict() if target.calibration else None,
            extended_set_size=opts.extended_set_size,
            extended_set_weight=opts.extended_set_weight,
            layout_iterations=opts.layout_iterations,
            final_basis=target.final_basis,
            best_of=opts.best_of,
            schedule=opts.schedule,
            route_cost=opts.route_cost,
            name=name,
        )

    # -- live objects -------------------------------------------------------

    def target(self) -> Target:
        """The compilation target described by this job's device fields."""
        return Target(
            coupling_map=CouplingMap.from_dict(self.coupling_map) if self.coupling_map else None,
            calibration=(
                DeviceCalibration.from_dict(self.calibration) if self.calibration else None
            ),
            final_basis=self.final_basis,
        )

    def options(self) -> TranspileOptions:
        """The compilation options described by this job's option fields."""
        return TranspileOptions(
            routing=self.routing,
            level=self.level,
            seed=self.seed,
            nassc_config=NASSCConfig(*self.nassc_config) if self.nassc_config else None,
            noise_aware=self.noise_aware,
            extended_set_size=self.extended_set_size,
            extended_set_weight=self.extended_set_weight,
            layout_iterations=self.layout_iterations,
            best_of=self.best_of,
            schedule=self.schedule,
            route_cost=self.route_cost,
        )

    # -- content addressing -------------------------------------------------

    def content_dict(self) -> Dict:
        """The canonical content of the job (everything that influences the result).

        The target's and the options' canonical dicts are the fingerprint input, so any
        change to a device property (coupling map, calibration, output basis) or to a
        compile option (method, level, seed, heuristic knobs) produces a new cache key.
        """
        return {
            "version": FINGERPRINT_VERSION,
            "pipeline_version": PIPELINE_VERSION,
            "qasm": self.qasm,
            "target": self.target().content_dict(),
            "options": self.options().content_dict(),
        }

    def fingerprint(self) -> str:
        """Deterministic content hash of the job (sha256 over canonical JSON).

        Stable across processes and machines: the hash covers only the canonical JSON
        serialisation, never object identities, and ``name`` is excluded.  Recomputed on
        every call (it folds in the module-level pipeline version); hot paths such as
        the server's admission flow compute it once and pass it along explicitly.
        """
        canonical = json.dumps(self.content_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict:
        """Flat JSON form (kept schema-compatible with pre-Target job specs, plus ``level``)."""
        return {
            "qasm": self.qasm,
            "routing": self.routing,
            "level": self.level,
            "coupling_map": self.coupling_map,
            "seed": self.seed,
            "nassc_config": list(self.nassc_config) if self.nassc_config else None,
            "noise_aware": self.noise_aware,
            "calibration": self.calibration,
            "extended_set_size": self.extended_set_size,
            "extended_set_weight": self.extended_set_weight,
            "layout_iterations": self.layout_iterations,
            "final_basis": self.final_basis,
            "best_of": self.best_of,
            "schedule": self.schedule,
            "route_cost": self.route_cost,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "TranspileJob":
        nassc = data.get("nassc_config")
        return cls(
            qasm=data["qasm"],
            routing=data.get("routing", "sabre"),
            level=data.get("level", "O1"),
            coupling_map=data.get("coupling_map"),
            seed=data.get("seed"),
            nassc_config=tuple(nassc) if nassc else None,
            noise_aware=data.get("noise_aware", False),
            calibration=data.get("calibration"),
            extended_set_size=data.get("extended_set_size", 20),
            extended_set_weight=data.get("extended_set_weight", 0.5),
            layout_iterations=data.get("layout_iterations", 2),
            final_basis=data.get("final_basis", "zsx"),
            best_of=data.get("best_of"),
            schedule=data.get("schedule"),
            route_cost=data.get("route_cost", "hops"),
            name=data.get("name", ""),
        )

    def with_name(self, name: str) -> "TranspileJob":
        return replace(self, name=name)

    # -- execution ----------------------------------------------------------

    def build_circuit(self) -> QuantumCircuit:
        circuit = qasm.loads(self.qasm)
        if self.name:
            circuit.name = self.name
        return circuit

    def run(self, *, trial_subset: Optional[Sequence[int]] = None) -> TranspileResult:
        """Execute the job in the current process and return the live result.

        ``trial_subset`` restricts a ``best_of`` ensemble to the given global trial
        indices (the server's fan-out path); seeds are unchanged, so reducing the
        subset results by their ensemble winner key reproduces the full run's winner.
        """
        return transpile(
            self.build_circuit(), self.target(), self.options(), _trial_subset=trial_subset
        )


@dataclass(frozen=True)
class JobError:
    """Structured record of a job that raised instead of producing a result."""

    fingerprint: str
    job_name: str
    exc_type: str
    message: str
    traceback: str = ""

    def to_dict(self) -> Dict:
        return {
            "fingerprint": self.fingerprint,
            "job_name": self.job_name,
            "exc_type": self.exc_type,
            "message": self.message,
            "traceback": self.traceback,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "JobError":
        return cls(
            fingerprint=data["fingerprint"],
            job_name=data.get("job_name", ""),
            exc_type=data.get("exc_type", "Exception"),
            message=data.get("message", ""),
            traceback=data.get("traceback", ""),
        )

    def __str__(self) -> str:
        label = self.job_name or self.fingerprint[:12]
        return f"{label}: {self.exc_type}: {self.message}"


@dataclass
class JobOutcome:
    """The terminal state of one submitted job: a result, or a structured error."""

    job: TranspileJob
    fingerprint: str
    result: Optional[TranspileResult] = None
    error: Optional[JobError] = None
    from_cache: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self) -> TranspileResult:
        """The result, raising a ``RuntimeError`` if the job failed."""
        if self.error is not None:
            raise RuntimeError(f"transpile job failed -- {self.error}")
        assert self.result is not None
        return self.result


def jobs_for_seeds(
    circuit: QuantumCircuit,
    target: Union[Target, CouplingMap, None],
    seeds: Sequence[int],
    **kwargs,
) -> list:
    """Convenience fan-out: one job per seed (the paper averages over routing seeds)."""
    return [
        TranspileJob.from_circuit(circuit, target, seed=seed, **kwargs)
        for seed in seeds
    ]

"""Parallel batch executor for transpile jobs.

:class:`BatchTranspiler` fans a list of :class:`~repro.service.jobs.TranspileJob` specs
across a ``concurrent.futures`` process pool:

* **Content-addressed caching** — every job is looked up in a :class:`ResultCache` by its
  fingerprint before any work is scheduled; duplicate jobs inside one batch execute once.
* **Error isolation** — a job that raises produces a structured :class:`JobError` in its
  :class:`JobOutcome`; it never kills the batch or the pool.
* **Determinism** — jobs carry their own seeds and workers share no state, so a parallel
  run is bit-identical to a serial run of the same batch.
* **Chunking** — misses are submitted in chunks to amortise process round trips; results
  stream back to an optional progress callback as chunks complete.

Workers exchange only JSON-safe payloads (the :meth:`TranspileResult.to_dict` form), which
is also exactly what the cache stores — one representation end to end.
"""

from __future__ import annotations

import math
import os
import traceback
from contextlib import nullcontext
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.pipeline import TranspileResult
from ..obs.tracer import Tracer, use_tracer
from .cache import ResultCache
from .jobs import JobError, JobOutcome, TranspileJob

#: ``progress(done, total, outcome)`` — invoked in the parent as each job settles.
ProgressCallback = Callable[[int, int, JobOutcome], None]


def _execute_one(payload: Dict, trace_ctx: Optional[Dict] = None) -> Dict:
    """Run one job dict, returning ``{"ok": ..., "result"|"error": ...}`` (never raises).

    ``trace_ctx`` (``{"trace_id", "parent_id"}``) rides *next to* the job payload, never
    inside it: the job fingerprint is content-addressed and two identical jobs must keep
    identical fingerprints whether or not they are traced.  When present, a worker-side
    tracer is installed for the duration of the job and its span tree is returned under
    the top-level ``"trace"`` key — deliberately outside ``"result"``, so the result
    payload that enters the shared :class:`ResultCache` stays trace-free (cached payloads
    are served to unrelated future requests).
    """
    job = TranspileJob.from_dict(payload)
    tracer = None
    if trace_ctx is not None:
        tracer = Tracer(
            trace_id=trace_ctx.get("trace_id"),
            parent_id=trace_ctx.get("parent_id"),
            process="worker",
        )
    try:
        with use_tracer(tracer) if tracer is not None else nullcontext():
            result = job.run()
        result_payload = result.to_dict()
        trace = result_payload.pop("trace", [])
        raw = {"ok": True, "result": result_payload}
        if trace:
            raw["trace"] = trace
        return raw
    except Exception as exc:  # noqa: BLE001 - error isolation is the contract
        error = JobError(
            fingerprint=job.fingerprint(),
            job_name=job.name,
            exc_type=type(exc).__name__,
            message=str(exc),
            traceback=traceback.format_exc(),
        )
        raw = {"ok": False, "error": error.to_dict()}
        if tracer is not None:
            raw["trace"] = tracer.span_dicts()
        return raw


def _execute_chunk(payloads: List[Dict]) -> List[Dict]:
    """Worker entry point: run a chunk of job dicts serially inside one process."""
    return [_execute_one(payload) for payload in payloads]


def _execute_trials(
    payload: Dict, trials: List[int], trace_ctx: Optional[Dict] = None
) -> Dict:
    """Worker entry point for ensemble fan-out: run a subset of one job's trials.

    Same payload contract as :func:`_execute_one`, but the job's ``best_of`` ensemble
    executes only the given global trial indices (seeds unchanged).  The caller reduces
    the subset results by their ``ensemble["winner_key"]`` — bit-identical to running
    all trials in one process, because ensemble pruning is lossless under any
    partition of trials.
    """
    job = TranspileJob.from_dict(payload)
    tracer = None
    if trace_ctx is not None:
        tracer = Tracer(
            trace_id=trace_ctx.get("trace_id"),
            parent_id=trace_ctx.get("parent_id"),
            process="worker",
        )
    try:
        with use_tracer(tracer) if tracer is not None else nullcontext():
            result = job.run(trial_subset=trials)
        result_payload = result.to_dict()
        trace = result_payload.pop("trace", [])
        raw = {"ok": True, "result": result_payload}
        if trace:
            raw["trace"] = trace
        return raw
    except Exception as exc:  # noqa: BLE001 - error isolation is the contract
        error = JobError(
            fingerprint=job.fingerprint(),
            job_name=job.name,
            exc_type=type(exc).__name__,
            message=str(exc),
            traceback=traceback.format_exc(),
        )
        raw = {"ok": False, "error": error.to_dict()}
        if tracer is not None:
            raw["trace"] = tracer.span_dicts()
        return raw


def default_worker_count() -> int:
    """Worker count used when ``max_workers=None`` (all cores, capped at 8)."""
    return max(1, min(8, os.cpu_count() or 1))


class BatchTranspiler:
    """Job-oriented execution service above the pass-manager core.

    Parameters
    ----------
    max_workers:
        Process count.  ``1`` (or ``0``/negative) runs everything serially in-process;
        ``None`` picks :func:`default_worker_count`.
    cache:
        Optional shared :class:`ResultCache`.  When omitted a private in-memory cache is
        created, so repeated jobs inside and across batches of this executor still hit.
    chunksize:
        Jobs per worker task.  ``None`` auto-sizes to about four chunks per worker.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        *,
        cache: Optional[ResultCache] = None,
        chunksize: Optional[int] = None,
    ) -> None:
        self.max_workers = default_worker_count() if max_workers is None else max(1, max_workers)
        self.cache = cache if cache is not None else ResultCache()
        self.chunksize = chunksize

    # ------------------------------------------------------------------

    @property
    def stats(self):
        """Cache statistics of the executor's result cache."""
        return self.cache.stats

    def run(
        self,
        jobs: Sequence[TranspileJob],
        *,
        progress: Optional[ProgressCallback] = None,
    ) -> List[JobOutcome]:
        """Execute a batch, returning one :class:`JobOutcome` per job, in job order."""
        total = len(jobs)
        outcomes: List[Optional[JobOutcome]] = [None] * total
        done = 0

        def settle(index: int, outcome: JobOutcome) -> None:
            nonlocal done
            outcomes[index] = outcome
            done += 1
            if progress is not None:
                progress(done, total, outcome)

        # Phase 1: resolve cache hits and dedupe identical jobs within the batch.
        pending: Dict[str, List[int]] = {}
        for index, job in enumerate(jobs):
            fingerprint = job.fingerprint()
            payload = self.cache.get(fingerprint)
            if payload is not None:
                settle(index, self._outcome_from_payload(job, fingerprint, payload, True))
            else:
                pending.setdefault(fingerprint, []).append(index)

        # Phase 2: execute the unique misses (parallel when it pays off).
        unique = list(pending)
        if unique:
            miss_jobs = [jobs[pending[fp][0]] for fp in unique]
            if self.max_workers <= 1 or len(unique) == 1:
                for fingerprint, job in zip(unique, miss_jobs):
                    raw = _execute_one(job.to_dict())
                    self._settle_executed(jobs, pending, {fingerprint: raw}, settle)
            else:
                self._run_parallel(jobs, pending, unique, miss_jobs, settle)
        missing = [i for i, o in enumerate(outcomes) if o is None]
        assert not missing, f"executor lost outcomes for job indices {missing}"
        return outcomes  # type: ignore[return-value]

    def run_one(self, job: TranspileJob) -> JobOutcome:
        """Convenience wrapper: run a single job through the cache + executor."""
        return self.run([job])[0]

    def results(self, jobs: Sequence[TranspileJob], **kwargs) -> List[TranspileResult]:
        """Run a batch and unwrap every outcome (raises on the first failed job)."""
        return [outcome.unwrap() for outcome in self.run(jobs, **kwargs)]

    # -- internals ----------------------------------------------------------

    def _outcome_from_payload(
        self, job: TranspileJob, fingerprint: str, raw: Dict, from_cache: bool
    ) -> JobOutcome:
        if from_cache or raw.get("ok", False):
            payload = raw if from_cache else raw["result"]
            result = TranspileResult.from_dict(payload)
            # Cache entries are shared between identically-configured jobs whatever they
            # are called; the display name always comes from *this* job (falling back to
            # the QASM parser's default for unnamed jobs, never the cached job's label).
            result.circuit.name = job.name or "qasm_circuit"
            return JobOutcome(
                job=job,
                fingerprint=fingerprint,
                result=result,
                from_cache=from_cache,
            )
        return JobOutcome(
            job=job,
            fingerprint=fingerprint,
            error=JobError.from_dict(raw["error"]),
        )

    def _settle_executed(
        self,
        jobs: Sequence[TranspileJob],
        pending: Dict[str, List[int]],
        executed: Dict[str, Dict],
        settle: Callable[[int, JobOutcome], None],
    ) -> None:
        for fingerprint, raw in executed.items():
            if raw.get("ok", False):
                self.cache.put(fingerprint, raw["result"])
            for index in pending[fingerprint]:
                settle(index, self._outcome_from_payload(jobs[index], fingerprint, raw, False))

    def _run_parallel(
        self,
        jobs: Sequence[TranspileJob],
        pending: Dict[str, List[int]],
        unique: List[str],
        miss_jobs: List[TranspileJob],
        settle: Callable[[int, JobOutcome], None],
    ) -> None:
        workers = min(self.max_workers, len(unique))
        chunksize = self.chunksize or max(1, math.ceil(len(unique) / (workers * 4)))
        chunks: List[Tuple[List[str], List[Dict]]] = []
        for start in range(0, len(unique), chunksize):
            fps = unique[start : start + chunksize]
            chunks.append((fps, [job.to_dict() for job in miss_jobs[start : start + chunksize]]))

        def settle_chunk(executed: Dict[str, Dict]) -> None:
            self._settle_executed(jobs, pending, executed, settle)

        def run_serially(fps: List[str]) -> List[Dict]:
            return [_execute_one(jobs[pending[fp][0]].to_dict()) for fp in fps]

        # Only pool mechanics live inside try blocks: an exception raised by settlement
        # (a user progress callback, result deserialization) must propagate, not be
        # mistaken for a pool failure and trigger double-settling serial re-execution.
        try:
            pool = ProcessPoolExecutor(max_workers=workers)
        except (OSError, PermissionError, RuntimeError):
            # Pool creation failed (fork disallowed, ...): run the whole batch in-process.
            for fingerprint in unique:
                settle_chunk({fingerprint: run_serially([fingerprint])[0]})
            return

        with pool:
            try:
                future_to_fps = {
                    pool.submit(_execute_chunk, payloads): fps for fps, payloads in chunks
                }
            except RuntimeError:
                # Pool broke during submission; fall back serially for everything.
                for fingerprint in unique:
                    settle_chunk({fingerprint: run_serially([fingerprint])[0]})
                return
            not_done = set(future_to_fps)
            while not_done:
                finished, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for future in finished:
                    fps = future_to_fps[future]
                    try:
                        raw_list = future.result()
                    except Exception:  # noqa: BLE001 - BrokenProcessPool and kin
                        # Per-job exceptions never surface here (workers return
                        # structured errors); this is the pool dying under the chunk.
                        raw_list = run_serially(fps)
                    settle_chunk(dict(zip(fps, raw_list)))


def transpile_batch(
    jobs: Sequence[TranspileJob],
    *,
    max_workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressCallback] = None,
) -> List[JobOutcome]:
    """One-shot helper: run a batch through a temporary :class:`BatchTranspiler`."""
    executor = BatchTranspiler(max_workers=max_workers, cache=cache)
    return executor.run(jobs, progress=progress)

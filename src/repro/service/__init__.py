"""Batch transpilation service: job specs, content-addressed caching, parallel execution.

This is the job-oriented layer above the pass-manager core (``repro.core``), analogous to
the execution services real transpiler stacks ship above their circuit compilers:

* :class:`TranspileJob` — a serialisable spec of one ``transpile()`` call with a
  deterministic content fingerprint.
* :class:`ResultCache` / :class:`CacheStats` — content-addressed result cache (in-memory
  LRU plus optional on-disk JSON store).
* :class:`BatchTranspiler` — fans job batches across a process pool with chunking,
  per-job error capture and progress callbacks.
* ``python -m repro`` (:mod:`repro.service.cli`) — command-line front end that regenerates
  the paper's artifacts through the batch executor.
"""

from .cache import CacheStats, ResultCache
from .executor import BatchTranspiler, default_worker_count, transpile_batch
from .jobs import JobError, JobOutcome, TranspileJob, jobs_for_seeds

__all__ = [
    "BatchTranspiler",
    "CacheStats",
    "JobError",
    "JobOutcome",
    "ResultCache",
    "TranspileJob",
    "default_worker_count",
    "jobs_for_seeds",
    "transpile_batch",
]

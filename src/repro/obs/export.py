"""Trace exporters and analysis helpers.

Two on-disk formats:

* **Chrome trace-event JSON** (:func:`chrome_trace`, :func:`write_chrome_trace`) — the
  ``{"traceEvents": [...]}`` envelope with complete ("X") duration events, loadable in
  Perfetto / ``chrome://tracing``.  Span and parent ids travel in each event's ``args``
  so :func:`load_trace_file` can reconstruct the tree loss-lessly.
* **JSONL spans** (:func:`write_jsonl`) — one serialised span per line, for ad-hoc
  ``jq``/pandas analysis.

Analysis helpers (:func:`self_times`, :func:`top_spans`, :func:`format_tree`) power the
``repro trace`` CLI subcommand and the examples.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

#: Stable process-name → Chrome pid assignment, so the three tiers of a merged
#: client→server→worker trace land in three labelled rows.
_PROCESS_PIDS = {"client": 1, "server": 2, "worker": 3, "local": 1}


def _as_dicts(spans: Sequence) -> List[Dict]:
    """Accept Span objects or already-serialised dicts uniformly."""
    return [span if isinstance(span, dict) else span.to_dict() for span in spans]


def chrome_trace(spans: Sequence, counters: Optional[Dict[str, int]] = None) -> Dict:
    """Build a Chrome trace-event JSON document from spans (+ optional counter snapshot)."""
    events: List[Dict] = []
    pids_seen: Dict[int, str] = {}
    for span in _as_dicts(spans):
        process = span.get("process", "local")
        pid = _PROCESS_PIDS.get(process, 9)
        pids_seen.setdefault(pid, process)
        args = dict(span.get("attrs") or {})
        args["span_id"] = span["span_id"]
        if span.get("parent_id"):
            args["parent_id"] = span["parent_id"]
        events.append(
            {
                "name": span["name"],
                "cat": process,
                "ph": "X",
                "ts": span["start"] * 1e6,
                "dur": max(0.0, (span["end"] - span["start"]) * 1e6),
                "pid": pid,
                "tid": 1,
                "args": args,
            }
        )
    for pid, process in sorted(pids_seen.items()):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 1,
                "args": {"name": f"repro:{process}"},
            }
        )
    doc: Dict = {"traceEvents": events, "displayTimeUnit": "ms"}
    if counters:
        doc["otherData"] = {"counters": {k: counters[k] for k in sorted(counters)}}
    return doc


def write_chrome_trace(
    path: str, spans: Sequence, counters: Optional[Dict[str, int]] = None
) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(spans, counters), handle, indent=1)


def write_jsonl(path: str, spans: Sequence) -> None:
    """One serialised span per line."""
    with open(path, "w", encoding="utf-8") as handle:
        for span in _as_dicts(spans):
            handle.write(json.dumps(span) + "\n")


def load_trace_file(path: str) -> List[Dict]:
    """Read spans back from any format this module writes.

    Accepts Chrome trace-event JSON (tree reconstructed from ``args.span_id`` /
    ``args.parent_id``), a ``{"spans": [...]}`` document, a bare span list, or JSONL.
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        return [json.loads(line) for line in text.splitlines() if line.strip()]
    if isinstance(doc, list):
        return doc
    if "spans" in doc:
        return list(doc["spans"])
    spans = []
    for event in doc.get("traceEvents", []):
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args") or {})
        span_id = args.pop("span_id", None)
        parent_id = args.pop("parent_id", None)
        start = event.get("ts", 0.0) / 1e6
        spans.append(
            {
                "trace_id": "",
                "span_id": span_id,
                "parent_id": parent_id,
                "name": event.get("name", ""),
                "start": start,
                "end": start + event.get("dur", 0.0) / 1e6,
                "process": event.get("cat", "local"),
                "attrs": args,
            }
        )
    return spans


# ---------------------------------------------------------------------------
# Analysis
# ---------------------------------------------------------------------------


def self_times(spans: Sequence) -> List[Tuple[Dict, float]]:
    """Per-span self-time: duration minus the duration of direct children.

    Cross-process gaps count toward the parent's self-time only to the extent no child
    covers them, which is exactly what "where did the wall-time actually go" needs.
    """
    dicts = _as_dicts(spans)
    child_total: Dict[str, float] = {}
    for span in dicts:
        parent = span.get("parent_id")
        if parent:
            child_total[parent] = child_total.get(parent, 0.0) + (
                span["end"] - span["start"]
            )
    out = []
    for span in dicts:
        duration = span["end"] - span["start"]
        out.append((span, max(0.0, duration - child_total.get(span["span_id"], 0.0))))
    return out


def top_spans(spans: Sequence, n: int = 5) -> List[Tuple[Dict, float]]:
    """The ``n`` spans with the largest self-time, descending."""
    return sorted(self_times(spans), key=lambda item: item[1], reverse=True)[:n]


def format_tree(spans: Sequence) -> str:
    """Render the span forest as an indented text tree with durations."""
    dicts = _as_dicts(spans)
    known = {span["span_id"] for span in dicts}
    children: Dict[Optional[str], List[Dict]] = {}
    for span in dicts:
        parent = span.get("parent_id")
        key = parent if parent in known else None
        children.setdefault(key, []).append(span)
    for bucket in children.values():
        bucket.sort(key=lambda span: span["start"])

    lines: List[str] = []

    def walk(span: Dict, depth: int) -> None:
        duration_ms = (span["end"] - span["start"]) * 1000.0
        attrs = span.get("attrs") or {}
        note = ""
        interesting = {
            k: v for k, v in attrs.items() if k not in ("span_id", "parent_id")
        }
        if interesting:
            pairs = ", ".join(f"{k}={v}" for k, v in sorted(interesting.items())[:4])
            note = f"  [{pairs}]"
        lines.append(
            f"{'  ' * depth}{span['name']}  {duration_ms:9.3f} ms"
            f"  ({span.get('process', 'local')}){note}"
        )
        for child in children.get(span["span_id"], []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    return "\n".join(lines)

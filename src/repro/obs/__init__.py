"""``repro.obs`` — dependency-free tracing and telemetry.

Three pieces:

* :mod:`repro.obs.tracer` — :class:`Span`/:class:`Tracer` span trees, the ambient
  process-wide tracer (no-op by default: one attribute lookup on the hot path),
  ``traceparent``-style cross-process propagation, and the ``REPRO_TRACE`` env toggle.
* :mod:`repro.obs.counters` — the global :data:`COUNTERS` registry unifying cache
  hit/miss and routing-kernel counters across the codebase.
* :mod:`repro.obs.export` — Chrome trace-event JSON / JSONL exporters and
  self-time analysis helpers.
"""

from .counters import COUNTERS, CounterRegistry, hit_rate
from .export import (
    chrome_trace,
    format_tree,
    load_trace_file,
    self_times,
    top_spans,
    write_chrome_trace,
    write_jsonl,
)
from .tracer import (
    Span,
    Tracer,
    active_tracer,
    current_tracer,
    env_trace_path,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
    set_tracer,
    use_tracer,
)

__all__ = [
    "COUNTERS",
    "CounterRegistry",
    "Span",
    "Tracer",
    "active_tracer",
    "chrome_trace",
    "current_tracer",
    "env_trace_path",
    "format_traceparent",
    "format_tree",
    "hit_rate",
    "load_trace_file",
    "new_span_id",
    "new_trace_id",
    "parse_traceparent",
    "self_times",
    "set_tracer",
    "top_spans",
    "use_tracer",
    "write_chrome_trace",
    "write_jsonl",
]

"""Span-based tracing for the transpilation pipeline (dependency-free).

A :class:`Span` is one timed operation — a ``transpile()`` call, a pass invocation, a
queue wait — with a 128-bit trace id shared by every span of one request, a 64-bit span
id, a parent link, wall-clock start/end, and a dict of typed attributes.  A
:class:`Tracer` collects the spans of one process; span trees from different processes
(client, server event loop, pool worker) are merged by trace id downstream.

The hot-path contract: tracing is **off** by default and costs exactly one contextvar
read where instrumented code checks :func:`current_tracer`.  No span
objects, no clock reads, no allocations happen until a tracer is installed — the tier-1
overhead test pins this via :data:`SPANS_STARTED`.

Cross-process propagation follows the W3C ``traceparent`` header shape
(``00-<trace_id>-<parent_span_id>-01``): :func:`format_traceparent` /
:func:`parse_traceparent` are what ``repro.client`` sends and the server consumes.

The ``REPRO_TRACE`` environment variable enables tracing without code changes: any
truthy value turns the ambient tracer on; a value ending in ``.json`` additionally
makes :func:`repro.transpile` rewrite a Chrome-trace file there after every top-level
call.
"""

from __future__ import annotations

import os
import time
from contextvars import ContextVar
from typing import Dict, Iterator, List, Optional

#: Total spans ever started in this process.  The no-op overhead contract test asserts
#: this does not move during an untraced ``transpile()`` — a counter-based (CI-stable)
#: stand-in for "zero tracing allocations on the disabled path".
SPANS_STARTED = 0


def new_trace_id() -> str:
    """A fresh 32-hex-digit trace id (W3C trace-context width)."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 16-hex-digit span id.

    ``os.urandom`` rather than ``uuid.uuid4``: it is ~5x cheaper per call (span ids are
    minted once per span on the traced hot path) and equally fork-safe, which matters
    because process-pool workers mint ids for the same trace concurrently.
    """
    return os.urandom(8).hex()


def format_traceparent(trace_id: str, span_id: str) -> str:
    """Serialise a trace context into a ``traceparent``-style header value."""
    return f"00-{trace_id}-{span_id}-01"


def parse_traceparent(value: Optional[str]) -> Optional[Dict[str, str]]:
    """Parse a ``traceparent`` header into ``{"trace_id", "parent_id"}`` (None if invalid)."""
    if not value:
        return None
    parts = value.strip().split("-")
    if len(parts) != 4:
        return None
    _version, trace_id, parent_id, _flags = parts
    if len(trace_id) != 32 or len(parent_id) != 16:
        return None
    try:
        int(trace_id, 16), int(parent_id, 16)
    except ValueError:
        return None
    return {"trace_id": trace_id, "parent_id": parent_id}


class Span:
    """One timed operation in a trace tree."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "start", "end", "attrs", "process")

    def __init__(
        self,
        name: str,
        *,
        trace_id: str,
        parent_id: Optional[str] = None,
        span_id: Optional[str] = None,
        start: Optional[float] = None,
        process: str = "local",
        attrs: Optional[Dict] = None,
    ) -> None:
        global SPANS_STARTED
        SPANS_STARTED += 1
        self.trace_id = trace_id
        self.span_id = span_id if span_id is not None else new_span_id()
        self.parent_id = parent_id
        self.name = name
        self.start = time.time() if start is None else start
        self.end: Optional[float] = None
        self.attrs: Dict = dict(attrs) if attrs else {}
        self.process = process

    def set(self, key: str, value) -> "Span":
        """Attach (or overwrite) one attribute; returns the span for chaining."""
        self.attrs[key] = value
        return self

    def finish(self, end: Optional[float] = None) -> "Span":
        if self.end is None:
            self.end = time.time() if end is None else end
        return self

    @property
    def duration(self) -> float:
        """Wall-clock seconds covered by the span (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def to_dict(self) -> Dict:
        """JSON-safe form shipped across process boundaries and stored in results."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end if self.end is not None else self.start,
            "process": self.process,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Span":
        span = cls(
            data["name"],
            trace_id=data.get("trace_id", ""),
            parent_id=data.get("parent_id"),
            span_id=data.get("span_id"),
            start=float(data.get("start", 0.0)),
            process=data.get("process", "local"),
            attrs=data.get("attrs") or {},
        )
        span.end = float(data.get("end", span.start))
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Span {self.name} {self.duration * 1000:.2f}ms attrs={self.attrs}>"


class _SpanContext:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._span.set("error", f"{exc_type.__name__}: {exc}")
        self._tracer.end_span(self._span)


class Tracer:
    """Collects the spans of one process for one (or more) traces.

    The tracer keeps a stack of open spans so nested ``span()`` blocks parent
    automatically; the server, which interleaves many jobs on one event loop, builds
    spans with explicit parent ids instead (see :meth:`make_span`).
    """

    def __init__(
        self,
        *,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        process: str = "local",
    ) -> None:
        self.trace_id = trace_id if trace_id is not None else new_trace_id()
        #: Parent span id for root spans of this tracer (cross-process link).
        self.parent_id = parent_id
        self.process = process
        self.finished: List[Span] = []
        self._stack: List[Span] = []

    # -- structured (stack-parented) spans ------------------------------------

    def span(self, name: str, **attrs) -> _SpanContext:
        """Open a child span of the innermost open span (context manager)."""
        return _SpanContext(self, self.start_span(name, **attrs))

    def start_span(self, name: str, **attrs) -> Span:
        parent = self._stack[-1].span_id if self._stack else self.parent_id
        span = Span(
            name, trace_id=self.trace_id, parent_id=parent, process=self.process, attrs=attrs
        )
        self._stack.append(span)
        return span

    def end_span(self, span: Span) -> Span:
        span.finish()
        # Close any abandoned inner spans so the stack cannot wedge on exceptions.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            top.finish()
            self.finished.append(top)
        self.finished.append(span)
        return span

    # -- free-standing spans (explicit parents) -------------------------------

    def make_span(
        self,
        name: str,
        *,
        parent_id: Optional[str] = None,
        start: Optional[float] = None,
        **attrs,
    ) -> Span:
        """Create a span with an explicit parent, outside the nesting stack.

        The caller owns its lifetime; pass it to :meth:`record` once finished.
        """
        return Span(
            name,
            trace_id=self.trace_id,
            parent_id=parent_id if parent_id is not None else self.parent_id,
            start=start,
            process=self.process,
            attrs=attrs,
        )

    def record(self, span: Span) -> Span:
        span.finish()
        self.finished.append(span)
        return span

    # -- export ---------------------------------------------------------------

    def span_dicts(self, *, since: int = 0) -> List[Dict]:
        """Serialised finished spans (``since`` slices from a prior ``len(finished)``)."""
        return [span.to_dict() for span in self.finished[since:]]

    def clear(self) -> None:
        self.finished.clear()
        self._stack.clear()

    def __len__(self) -> int:
        return len(self.finished)


# ---------------------------------------------------------------------------
# Ambient (process-wide) tracer
# ---------------------------------------------------------------------------

#: The ambient active tracer, held in a :class:`~contextvars.ContextVar` so each thread
#: (server thread-pool workers, the client's calling thread) sees its own installation —
#: a client exiting ``use_tracer`` can never clobber a worker's tracer mid-job.  ``None``
#: means tracing is disabled; the disabled hot path costs one contextvar read.
_ACTIVE: ContextVar[Optional[Tracer]] = ContextVar("repro_active_tracer", default=None)

#: Sentinel distinguishing "REPRO_TRACE not yet consulted" from "consulted, disabled".
_ENV_UNRESOLVED = object()
_env_tracer = _ENV_UNRESOLVED

TRACE_ENV = "REPRO_TRACE"


def current_tracer() -> Optional[Tracer]:
    """The installed ambient tracer, or ``None`` when tracing is disabled."""
    return _ACTIVE.get()


def set_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install (or with ``None`` remove) the ambient tracer; returns the previous one.

    The installation is scoped to the current thread/context — other threads keep
    their own ambient tracer (or none).
    """
    previous = _ACTIVE.get()
    _ACTIVE.set(tracer)
    return previous


class use_tracer:
    """Temporarily install a tracer: ``with use_tracer(t): transpile(...)``."""

    def __init__(self, tracer: Optional[Tracer]) -> None:
        self._tracer = tracer
        self._token = None

    def __enter__(self) -> Optional[Tracer]:
        self._token = _ACTIVE.set(self._tracer)
        return self._tracer

    def __exit__(self, *exc) -> None:
        if self._token is not None:
            _ACTIVE.reset(self._token)
            self._token = None


def env_trace_path() -> Optional[str]:
    """The Chrome-trace output path configured via ``REPRO_TRACE``, if any."""
    value = os.environ.get(TRACE_ENV, "")
    return value if value.endswith(".json") else None


def active_tracer() -> Optional[Tracer]:
    """The ambient tracer, honouring the ``REPRO_TRACE`` environment toggle.

    Entry points (``transpile()``, ``ReproClient.submit``) call this instead of
    :func:`current_tracer`: when no tracer is installed but ``REPRO_TRACE`` is set to a
    truthy value, a process-wide tracer is created once and installed, so ``REPRO_TRACE=1
    repro transpile ...`` traces without any code opting in.  Instrumented inner code
    (pass manager, routers) keeps using :func:`current_tracer` — by the time it runs,
    the entry point has installed the tracer.
    """
    installed = _ACTIVE.get()
    if installed is not None:
        return installed
    global _env_tracer
    if _env_tracer is _ENV_UNRESOLVED:
        value = os.environ.get(TRACE_ENV, "")
        enabled = value not in ("", "0", "false", "no", "off")
        _env_tracer = Tracer(process="local") if enabled else None
    if _env_tracer is not None:
        set_tracer(_env_tracer)
    return _env_tracer


def _reset_env_tracer_for_tests() -> None:
    """Forget the memoised ``REPRO_TRACE`` decision (test isolation helper)."""
    global _env_tracer
    _env_tracer = _ENV_UNRESOLVED


def iter_roots(spans: List[Span]) -> Iterator[Span]:
    """Yield spans whose parent is absent from the given list (tree roots)."""
    known = {span.span_id for span in spans}
    for span in spans:
        if span.parent_id is None or span.parent_id not in known:
            yield span

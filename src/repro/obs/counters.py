"""Process-wide counter registry unifying the repo's hot-path cache/kernel stats.

Before this module each cache kept private, mutually invisible numbers: the gate-matrix
and simulator-tensor ``lru_cache`` decorators hide theirs behind ``cache_info()``, the
commutation and synthesis caches kept none, and ``ResultCache`` had its own
``CacheStats``.  :data:`COUNTERS` is the single sink: hot paths call
:meth:`CounterRegistry.inc` (a dict update — no locks, telemetry-grade accuracy is
enough under free-threading races), and caches whose stats live elsewhere register a
*provider* callback merged in at :meth:`CounterRegistry.snapshot` time.

Naming convention: dotted lowercase paths, ``<subsystem>.<cache-or-kernel>.<event>`` —
e.g. ``cache.commutation.hits``, ``routing.sabre.swap_candidates_scored``.  The
Prometheus bridge in ``server/metrics.py`` re-exposes every snapshot entry as
``repro_obs_counter{name="..."}``.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional


class CounterRegistry:
    """Named monotonically increasing counters plus pull-based providers."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}
        self._providers: Dict[str, Callable[[], Dict[str, int]]] = {}

    def inc(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to a counter (creating it at zero)."""
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        """Current value of a pushed counter (providers are not consulted)."""
        return self._counts.get(name, 0)

    def register_provider(self, prefix: str, fn: Callable[[], Dict[str, int]]) -> None:
        """Register a callback whose values appear in snapshots under ``prefix.*``.

        Used by caches that already track their own stats (``functools.lru_cache``,
        ``ResultCache``): rather than double-counting on the hot path, the registry
        pulls their numbers when a snapshot is taken.  Re-registering a prefix replaces
        the previous provider (idempotent module reloads).
        """
        self._providers[prefix] = fn

    def snapshot(self) -> Dict[str, int]:
        """Merged view of pushed counters and every provider's current values."""
        out = dict(self._counts)
        for prefix, fn in self._providers.items():
            try:
                values = fn()
            except Exception:  # pragma: no cover - a broken provider must not kill telemetry
                continue
            for key, value in values.items():
                out[f"{prefix}.{key}"] = int(value)
        return out

    def reset(self) -> None:
        """Zero all pushed counters (providers are external state and are untouched)."""
        self._counts.clear()

    def __len__(self) -> int:
        return len(self._counts) + len(self._providers)


#: The process-wide registry all instrumented code reports into.
COUNTERS = CounterRegistry()


def hit_rate(snapshot: Dict[str, int], prefix: str) -> Optional[float]:
    """Hit rate for a ``<prefix>.hits`` / ``<prefix>.misses`` counter pair, if present."""
    hits = snapshot.get(f"{prefix}.hits")
    misses = snapshot.get(f"{prefix}.misses")
    if hits is None and misses is None:
        return None
    total = (hits or 0) + (misses or 0)
    return (hits or 0) / total if total else 0.0

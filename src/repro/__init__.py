"""NASSC reproduction: optimization-aware qubit routing (HPCA 2022).

Public API highlights
---------------------
* :class:`repro.QuantumCircuit` — circuit construction.
* :func:`repro.transpile` — compile a circuit for a device with SABRE or NASSC routing.
* :mod:`repro.benchlib` — the paper's benchmark circuits.
* :mod:`repro.evaluation` — runners regenerating the paper's tables and figures.
* :mod:`repro.service` — batch transpilation service (job specs, content-addressed
  result cache, parallel executor) and the ``python -m repro`` CLI.
* :mod:`repro.server` / :mod:`repro.client` — online transpilation server
  (``python -m repro serve``): asyncio HTTP job service with a priority queue, live
  progress streaming and Prometheus metrics, plus the stdlib Python client.
* :mod:`repro.obs` — end-to-end tracing and telemetry: span trees across
  client/server/worker, unified cache/kernel counters, Chrome-trace export.
* :mod:`repro.schedule` — timed-schedule IR: ASAP/ALAP duration-aware scheduling,
  idle-window decoherence analysis, and nanosecond-cost routing support.
"""

from .circuit import (
    DAGCircuit,
    Gate,
    Instruction,
    QuantumCircuit,
    StreamingDAG,
    qasm,
    random_circuit,
    random_circuit_stream,
)
from .core import (
    NASSCConfig,
    OPTIMIZATION_LEVELS,
    TranspileOptions,
    TranspileResult,
    compare_routings,
    optimize_logical,
    stream_to,
    transpile,
    transpile_stream,
)
from .hardware import (
    CouplingMap,
    Target,
    fake_montreal_calibration,
    grid_coupling_map,
    linear_coupling_map,
    montreal_coupling_map,
    synthetic_calibration,
)
from .client import ReproClient, transpile_remote
from .obs import COUNTERS, Span, Tracer, set_tracer, use_tracer
from .schedule import (
    Schedule,
    TimedInstruction,
    available_schedule_modes,
    decoherence_exposure,
    schedule_circuit,
    schedule_dag,
)
from .service import BatchTranspiler, ResultCache, TranspileJob
from .simulator import NoiseModel, NoisySimulator, StatevectorSimulator
from .synthesis import TwoQubitSynthesizer, cnot_count, weyl_coordinates
from .transpiler import (
    PipelineBuilder,
    available_routings,
    register_routing,
    unregister_routing,
)

__version__ = "1.2.0"

__all__ = [
    "DAGCircuit", "Gate", "Instruction", "QuantumCircuit", "StreamingDAG", "qasm",
    "random_circuit", "random_circuit_stream",
    "NASSCConfig", "OPTIMIZATION_LEVELS", "TranspileOptions", "TranspileResult",
    "compare_routings", "optimize_logical", "transpile", "transpile_stream", "stream_to",
    "CouplingMap", "Target", "fake_montreal_calibration", "grid_coupling_map",
    "linear_coupling_map", "montreal_coupling_map", "synthetic_calibration",
    "BatchTranspiler", "ReproClient", "ResultCache", "TranspileJob", "transpile_remote",
    "COUNTERS", "Span", "Tracer", "set_tracer", "use_tracer",
    "Schedule", "TimedInstruction", "available_schedule_modes", "decoherence_exposure",
    "schedule_circuit", "schedule_dag",
    "NoiseModel", "NoisySimulator", "StatevectorSimulator",
    "TwoQubitSynthesizer", "cnot_count", "weyl_coordinates",
    "PipelineBuilder", "available_routings", "register_routing", "unregister_routing",
    "__version__",
]

"""Plain-text, CSV and JSON rendering of the experiment results (the paper's tables/figures)."""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Sequence

from .experiments import AblationRow, ComparisonRow, NoiseExperimentRow, NOISE_METHODS, TableResult


def _format_row(values: Sequence[str], widths: Sequence[int]) -> str:
    return "  ".join(str(v).rjust(w) for v, w in zip(values, widths))


def format_cnot_table(result: TableResult) -> str:
    """Render a Table I/III/IV style report (CNOT counts)."""
    header = ["benchmark", "qubits", "orig_cx", "sabre_cx", "sabre_add", "nassc_cx",
              "nassc_add", "dCX_total%", "dCX_add%", "t_ratio"]
    widths = [16, 6, 8, 9, 9, 9, 9, 10, 9, 8]
    lines = [
        f"Added CNOT gates, Qiskit+{result.baseline.upper()} vs "
        f"Qiskit+{result.routing.upper()} on {result.topology}"
    ]
    lines.append(_format_row(header, widths))
    for row in result.rows:
        lines.append(_format_row([
            row.name, row.num_qubits, f"{row.original_cx:.0f}",
            f"{row.sabre_cx:.1f}", f"{row.sabre_added_cx:.1f}",
            f"{row.nassc_cx:.1f}", f"{row.nassc_added_cx:.1f}",
            f"{row.delta_cx_total:.2f}", f"{row.delta_cx_added:.2f}", f"{row.time_ratio:.2f}",
        ], widths))
    lines.append(_format_row([
        "geomean", "", "", "", "", "", "",
        f"{result.geomean_delta_cx_total:.2f}", f"{result.geomean_delta_cx_added:.2f}",
        f"{result.geomean_time_ratio:.2f}",
    ], widths))
    return "\n".join(lines)


def format_depth_table(result: TableResult) -> str:
    """Render a Table II style report (circuit depth)."""
    header = ["benchmark", "qubits", "orig_depth", "sabre_depth", "sabre_add",
              "nassc_depth", "nassc_add", "dD_total%", "dD_add%"]
    widths = [16, 6, 10, 11, 9, 11, 9, 9, 8]
    lines = [
        f"Circuit depth, Qiskit+{result.baseline.upper()} vs "
        f"Qiskit+{result.routing.upper()} on {result.topology}"
    ]
    lines.append(_format_row(header, widths))
    for row in result.rows:
        lines.append(_format_row([
            row.name, row.num_qubits, f"{row.original_depth:.0f}",
            f"{row.sabre_depth:.1f}", f"{row.sabre_added_depth:.1f}",
            f"{row.nassc_depth:.1f}", f"{row.nassc_added_depth:.1f}",
            f"{row.delta_depth_total:.2f}", f"{row.delta_depth_added:.2f}",
        ], widths))
    lines.append(_format_row([
        "geomean", "", "", "", "", "", "",
        f"{result.geomean_delta_depth_total:.2f}", f"{result.geomean_delta_depth_added:.2f}",
    ], widths))
    return "\n".join(lines)


def format_duration_table(result: TableResult) -> str:
    """Render the critical-path duration report of a schedule-enabled table experiment."""
    header = ["benchmark", "qubits", "sabre_ns", "nassc_ns", "dT_total%"]
    widths = [16, 6, 10, 10, 9]
    lines = [
        f"Critical-path duration (ns), Qiskit+{result.baseline.upper()} vs "
        f"Qiskit+{result.routing.upper()} on {result.topology}"
    ]
    lines.append(_format_row(header, widths))
    for row in result.rows:
        if not row.has_durations:
            continue
        lines.append(_format_row([
            row.name, row.num_qubits, f"{row.sabre_duration_ns:.0f}",
            f"{row.nassc_duration_ns:.0f}", f"{row.delta_duration:.2f}",
        ], widths))
    lines.append(_format_row([
        "geomean", "", "", "", f"{result.geomean_delta_duration:.2f}",
    ], widths))
    return "\n".join(lines)


def format_ablation(rows: List[AblationRow], topology: str) -> str:
    """Render one Figure 9 panel: best-of-8 combinations vs all-three-enabled."""
    lines = [f"CNOT reduction vs SABRE: best of 8 combinations vs all enabled ({topology})"]
    header = ["benchmark", "best_combo%", "all_enabled%"]
    widths = [16, 12, 13]
    lines.append(_format_row(header, widths))
    for row in rows:
        lines.append(_format_row(
            [row.name, f"{row.best_reduction:.2f}", f"{row.all_enabled_reduction:.2f}"], widths
        ))
    return "\n".join(lines)


def format_noise_experiment(rows: List[NoiseExperimentRow]) -> str:
    """Render Figure 11: added CNOTs and success rate per routing variant.

    The variant columns are taken from the rows themselves, so experiments run with
    non-default ``methods`` (e.g. a registered third-party router) render correctly.
    """
    methods = list(rows[0].added_cx) if rows else list(NOISE_METHODS)
    lines = ["Noise-model experiment (synthetic ibmq_montreal calibration)"]
    header = ["benchmark", "orig_cx"] + [f"add_{m}" for m in methods] + [
        f"sr_{m}" for m in methods
    ]
    widths = [16, 8] + [10] * len(methods) + [9] * len(methods)
    lines.append(_format_row(header, widths))
    for row in rows:
        values = [row.name, row.original_cx]
        values += [f"{row.added_cx[m]:.0f}" for m in methods]
        values += [f"{row.success_rate[m]:.3f}" for m in methods]
        lines.append(_format_row(values, widths))
    return "\n".join(lines)


def table_result_to_dict(result: TableResult) -> Dict:
    """JSON-safe form of a table experiment (rows plus the geometric-mean aggregates)."""
    rows = []
    for row in result.rows:
        entry = {
            "name": row.name,
            "num_qubits": row.num_qubits,
            "original_cx": row.original_cx,
            "original_depth": row.original_depth,
            "sabre_cx": row.sabre_cx,
            "sabre_depth": row.sabre_depth,
            "sabre_time": row.sabre_time,
            "nassc_cx": row.nassc_cx,
            "nassc_depth": row.nassc_depth,
            "nassc_time": row.nassc_time,
            "delta_cx_total_pct": row.delta_cx_total,
            "delta_cx_added_pct": row.delta_cx_added,
            "delta_depth_total_pct": row.delta_depth_total,
        }
        if row.has_durations:
            entry["sabre_duration_ns"] = row.sabre_duration_ns
            entry["nassc_duration_ns"] = row.nassc_duration_ns
            entry["delta_duration_pct"] = row.delta_duration
        rows.append(entry)
    geomean = {
        "delta_cx_total_pct": result.geomean_delta_cx_total,
        "delta_cx_added_pct": result.geomean_delta_cx_added,
        "delta_depth_total_pct": result.geomean_delta_depth_total,
        "delta_depth_added_pct": result.geomean_delta_depth_added,
        "time_ratio": result.geomean_time_ratio,
    }
    if result.has_durations:
        geomean["delta_duration_pct"] = result.geomean_delta_duration
    return {
        "topology": result.topology,
        "baseline": result.baseline,
        "routing": result.routing,
        "rows": rows,
        "geomean": geomean,
    }


def ablation_rows_to_dict(rows: Sequence[AblationRow]) -> List[Dict]:
    """JSON-safe form of a Figure 9 ablation panel."""
    return [
        {
            "name": row.name,
            "sabre_cx": row.sabre_cx,
            "cx_by_combination": dict(row.cx_by_combination),
            "best_reduction_pct": row.best_reduction,
            "all_enabled_reduction_pct": row.all_enabled_reduction,
        }
        for row in rows
    ]


def noise_rows_to_dict(rows: Sequence[NoiseExperimentRow]) -> List[Dict]:
    """JSON-safe form of the Figure 11 noise experiment."""
    return [
        {
            "name": row.name,
            "original_cx": row.original_cx,
            "added_cx": dict(row.added_cx),
            "success_rate": dict(row.success_rate),
        }
        for row in rows
    ]


def table_result_to_json(result: TableResult, *, indent: int = 2) -> str:
    """Serialise a table experiment to a JSON document."""
    return json.dumps(table_result_to_dict(result), indent=indent)


def cnot_table_to_csv(result: TableResult) -> str:
    """CSV export matching the artifact's ``cnot_table_using_*_map.csv`` outputs."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow([
        "name", "num_qubits", "original_cx", "sabre_cx_total", "sabre_cx_added",
        "sabre_time", "nassc_cx_total", "nassc_cx_added", "nassc_time",
        "delta_cx_total_pct", "delta_cx_added_pct", "time_ratio",
    ])
    for row in result.rows:
        writer.writerow([
            row.name, row.num_qubits, row.original_cx, row.sabre_cx, row.sabre_added_cx,
            f"{row.sabre_time:.3f}", row.nassc_cx, row.nassc_added_cx, f"{row.nassc_time:.3f}",
            f"{row.delta_cx_total:.2f}", f"{row.delta_cx_added:.2f}", f"{row.time_ratio:.2f}",
        ])
    writer.writerow([
        "geomean", "", "", "", "", "", "", "", "",
        f"{result.geomean_delta_cx_total:.2f}", f"{result.geomean_delta_cx_added:.2f}",
        f"{result.geomean_time_ratio:.2f}",
    ])
    return buffer.getvalue()


def depth_table_to_csv(result: TableResult) -> str:
    """CSV export matching the artifact's ``depth_table_using_montreal_map.csv`` output."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow([
        "name", "num_qubits", "original_depth", "sabre_depth_total", "sabre_depth_added",
        "nassc_depth_total", "nassc_depth_added", "delta_depth_total_pct", "delta_depth_added_pct",
    ])
    for row in result.rows:
        writer.writerow([
            row.name, row.num_qubits, row.original_depth, row.sabre_depth, row.sabre_added_depth,
            row.nassc_depth, row.nassc_added_depth,
            f"{row.delta_depth_total:.2f}", f"{row.delta_depth_added:.2f}",
        ])
    return buffer.getvalue()

"""Experiment runners that regenerate the paper's tables and figures.

Each runner mirrors one artifact of the paper's evaluation (Sec. VI):

* :func:`run_table_experiment` — Tables I/II (``ibmq_montreal``), III (linear), IV (grid):
  added CNOTs, circuit depth and transpile time for Qiskit+SABRE vs Qiskit+NASSC.
* :func:`run_optimization_ablation` — Figure 9: CNOT reduction of the best of the 8
  optimization-combination subsets vs enabling all three optimizations.
* :func:`run_noise_experiment` — Figure 11: added CNOTs and success rate of SABRE, NASSC,
  SABRE+HA and NASSC+HA under the (synthetic) ``ibmq_montreal`` noise model.

Every runner submits its transpile calls as :class:`~repro.service.jobs.TranspileJob`
batches through a :class:`~repro.service.executor.BatchTranspiler`, so regeneration gets
worker-pool parallelism and content-addressed result caching for free.  Pass ``workers=N``
(or a shared ``executor``) to fan out; the default stays serial and bit-identical to the
historical in-process behaviour because every job carries its own seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..benchlib.suite import BenchmarkCase, noise_benchmarks, table_benchmarks
from ..circuit import qasm
from ..core.nassc import NASSCConfig
from ..core.pipeline import TranspileResult, optimize_logical
from ..hardware.calibration import (
    DeviceCalibration,
    fake_montreal_calibration,
    synthetic_calibration,
)
from ..hardware.coupling import CouplingMap
from ..hardware.topologies import get_topology
from ..service.executor import BatchTranspiler, ProgressCallback
from ..service.jobs import TranspileJob
from ..simulator.noise import NoiseModel, NoisySimulator
from .metrics import geometric_mean_reduction, percentage_change


def _resolve_executor(
    executor: Optional[BatchTranspiler], workers: Optional[int]
) -> BatchTranspiler:
    """The executor experiments run on: the caller's, or a fresh one with ``workers``."""
    if executor is not None:
        return executor
    return BatchTranspiler(max_workers=workers if workers is not None else 1)


# ---------------------------------------------------------------------------
# Tables I-IV
# ---------------------------------------------------------------------------

@dataclass
class ComparisonRow:
    """One benchmark row comparing Qiskit+SABRE with Qiskit+NASSC."""

    name: str
    num_qubits: int
    original_cx: float
    original_depth: float
    sabre_cx: float
    sabre_depth: float
    sabre_time: float
    nassc_cx: float
    nassc_depth: float
    nassc_time: float
    #: Mean critical-path duration (ns) of the scheduled result; NaN when the
    #: experiment ran without a schedule mode.
    sabre_duration_ns: float = float("nan")
    nassc_duration_ns: float = float("nan")

    @property
    def sabre_added_cx(self) -> float:
        return self.sabre_cx - self.original_cx

    @property
    def nassc_added_cx(self) -> float:
        return self.nassc_cx - self.original_cx

    @property
    def sabre_added_depth(self) -> float:
        return self.sabre_depth - self.original_depth

    @property
    def nassc_added_depth(self) -> float:
        return self.nassc_depth - self.original_depth

    @property
    def delta_cx_total(self) -> float:
        return percentage_change(self.sabre_cx, self.nassc_cx)

    @property
    def delta_cx_added(self) -> float:
        return percentage_change(self.sabre_added_cx, self.nassc_added_cx)

    @property
    def delta_depth_total(self) -> float:
        return percentage_change(self.sabre_depth, self.nassc_depth)

    @property
    def delta_depth_added(self) -> float:
        return percentage_change(self.sabre_added_depth, self.nassc_added_depth)

    @property
    def time_ratio(self) -> float:
        return self.nassc_time / self.sabre_time if self.sabre_time > 0 else float("nan")

    @property
    def delta_duration(self) -> float:
        return percentage_change(self.sabre_duration_ns, self.nassc_duration_ns)

    @property
    def has_durations(self) -> bool:
        return np.isfinite(self.sabre_duration_ns) and np.isfinite(self.nassc_duration_ns)


@dataclass
class TableResult:
    """All rows of one table plus the paper's geometric-mean aggregates.

    ``baseline``/``routing`` name the two compared methods.  The row fields keep their
    historical ``sabre_*``/``nassc_*`` names whatever the methods are: ``sabre_*`` holds
    the baseline's numbers and ``nassc_*`` the treatment's.
    """

    topology: str
    rows: List[ComparisonRow] = field(default_factory=list)
    baseline: str = "sabre"
    routing: str = "nassc"

    @property
    def geomean_delta_cx_total(self) -> float:
        return geometric_mean_reduction(
            [r.sabre_cx for r in self.rows], [r.nassc_cx for r in self.rows]
        )

    @property
    def geomean_delta_cx_added(self) -> float:
        return geometric_mean_reduction(
            [max(r.sabre_added_cx, 1e-9) for r in self.rows],
            [max(r.nassc_added_cx, 1e-9) for r in self.rows],
        )

    @property
    def geomean_delta_depth_total(self) -> float:
        return geometric_mean_reduction(
            [r.sabre_depth for r in self.rows], [r.nassc_depth for r in self.rows]
        )

    @property
    def geomean_delta_depth_added(self) -> float:
        return geometric_mean_reduction(
            [max(r.sabre_added_depth, 1e-9) for r in self.rows],
            [max(r.nassc_added_depth, 1e-9) for r in self.rows],
        )

    @property
    def geomean_time_ratio(self) -> float:
        ratios = [r.time_ratio for r in self.rows if np.isfinite(r.time_ratio) and r.time_ratio > 0]
        if not ratios:
            return float("nan")
        return float(np.exp(np.mean(np.log(ratios))))

    @property
    def has_durations(self) -> bool:
        """Whether the experiment was run with a schedule mode (duration columns filled)."""
        return any(r.has_durations for r in self.rows)

    @property
    def geomean_delta_duration(self) -> float:
        timed = [r for r in self.rows if r.has_durations]
        if not timed:
            return float("nan")
        return geometric_mean_reduction(
            [r.sabre_duration_ns for r in timed], [r.nassc_duration_ns for r in timed]
        )


def _comparison_jobs(
    case: BenchmarkCase,
    coupling_map: CouplingMap,
    seeds: Sequence[int],
    nassc_config: Optional[NASSCConfig],
    *,
    baseline: str = "sabre",
    routing: str = "nassc",
    level: str = "O1",
    schedule: Optional[str] = None,
    calibration: Optional[Dict] = None,
) -> List[TranspileJob]:
    """The jobs of one table row: the no-routing reference, then (baseline, routing) per seed.

    ``schedule`` (with the matching ``calibration`` dict) makes every *routed* job also
    lower its result to a timed schedule; the unrouted reference stays unscheduled (it
    has no device to be timed against).
    """
    # Serialise the circuit and device once per case; the per-seed jobs share the text.
    qasm_text = qasm.dumps(case.build())
    coupling = coupling_map.to_dict()
    config = nassc_config.as_tuple() if nassc_config else None
    jobs = [TranspileJob(qasm=qasm_text, routing="none", level=level, name=f"{case.name}[orig]")]
    for seed in seeds:
        jobs.append(
            TranspileJob(
                qasm=qasm_text, routing=baseline, level=level, coupling_map=coupling,
                seed=seed, schedule=schedule, calibration=calibration,
                name=f"{case.name}[{baseline},s{seed}]",
            )
        )
        jobs.append(
            TranspileJob(
                qasm=qasm_text, routing=routing, level=level, coupling_map=coupling,
                seed=seed, nassc_config=config, schedule=schedule, calibration=calibration,
                name=f"{case.name}[{routing},s{seed}]",
            )
        )
    return jobs


def _comparison_row(
    case: BenchmarkCase, results: Sequence[TranspileResult]
) -> ComparisonRow:
    """Assemble a table row from the results of one :func:`_comparison_jobs` batch."""
    original = results[0]
    sabre = results[1::2]
    nassc = results[2::2]

    def mean_duration(group: Sequence[TranspileResult]) -> float:
        durations = [r.schedule.duration for r in group if r.schedule is not None]
        return float(np.mean(durations)) if durations else float("nan")

    return ComparisonRow(
        name=case.name,
        num_qubits=case.num_qubits,
        original_cx=original.cx_count,
        original_depth=original.depth,
        sabre_cx=float(np.mean([r.cx_count for r in sabre])),
        sabre_depth=float(np.mean([r.depth for r in sabre])),
        sabre_time=float(np.mean([r.transpile_time for r in sabre])),
        nassc_cx=float(np.mean([r.cx_count for r in nassc])),
        nassc_depth=float(np.mean([r.depth for r in nassc])),
        nassc_time=float(np.mean([r.transpile_time for r in nassc])),
        sabre_duration_ns=mean_duration(sabre),
        nassc_duration_ns=mean_duration(nassc),
    )


def compare_benchmark(
    case: BenchmarkCase,
    coupling_map: CouplingMap,
    *,
    seeds: Sequence[int] = (0,),
    nassc_config: Optional[NASSCConfig] = None,
    baseline: str = "sabre",
    routing: str = "nassc",
    level: str = "O1",
    schedule: Optional[str] = None,
    executor: Optional[BatchTranspiler] = None,
    workers: Optional[int] = None,
) -> ComparisonRow:
    """Average baseline-vs-treatment comparison for one benchmark over the given seeds."""
    executor = _resolve_executor(executor, workers)
    calibration = synthetic_calibration(coupling_map).to_dict() if schedule else None
    jobs = _comparison_jobs(
        case, coupling_map, seeds, nassc_config, baseline=baseline, routing=routing,
        level=level, schedule=schedule, calibration=calibration,
    )
    return _comparison_row(case, executor.results(jobs))


def run_table_experiment(
    topology: str = "montreal",
    *,
    cases: Optional[Sequence[BenchmarkCase]] = None,
    seeds: Sequence[int] = (0,),
    num_device_qubits: int = 25,
    baseline: str = "sabre",
    routing: str = "nassc",
    level: str = "O1",
    schedule: Optional[str] = None,
    executor: Optional[BatchTranspiler] = None,
    workers: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
) -> TableResult:
    """Regenerate one of Tables I-IV (the table is chosen by ``topology``).

    ``routing`` may name any registered routing method (the paper's tables compare the
    default ``nassc`` against the ``sabre`` baseline).  All (benchmark, routing, seed)
    combinations are submitted as one job batch, so with ``workers > 1`` the rows
    transpile concurrently and identical jobs are served from the executor's
    content-addressed cache.

    ``schedule`` (``"asap"``/``"alap"``) additionally lowers every routed result to a
    timed schedule against the topology's deterministic synthetic calibration, filling
    the rows' critical-path duration columns.
    """
    coupling_map = get_topology(topology, num_device_qubits)
    if cases is None:
        cases = table_benchmarks(max_qubits=coupling_map.num_qubits)
    executor = _resolve_executor(executor, workers)
    eligible = [case for case in cases if case.num_qubits <= coupling_map.num_qubits]
    calibration = synthetic_calibration(coupling_map).to_dict() if schedule else None
    job_lists = [
        _comparison_jobs(
            case, coupling_map, seeds, None, baseline=baseline, routing=routing,
            level=level, schedule=schedule, calibration=calibration,
        )
        for case in eligible
    ]
    flat = [job for jobs in job_lists for job in jobs]
    outcomes = iter(executor.results(flat, progress=progress))
    result = TableResult(topology=coupling_map.name, baseline=baseline, routing=routing)
    for case, jobs in zip(eligible, job_lists):
        result.rows.append(_comparison_row(case, [next(outcomes) for _ in jobs]))
    return result


# ---------------------------------------------------------------------------
# Figure 9: optimization-combination ablation
# ---------------------------------------------------------------------------

@dataclass
class AblationRow:
    """CNOT reduction vs SABRE for every optimization combination (one benchmark)."""

    name: str
    sabre_cx: float
    cx_by_combination: Dict[str, float] = field(default_factory=dict)

    @staticmethod
    def combination_key(config: NASSCConfig) -> str:
        bits = ["2q" if config.enable_2q_resynthesis else "--",
                "c1" if config.enable_commutation1 else "--",
                "c2" if config.enable_commutation2 else "--"]
        return "+".join(bits)

    def reduction(self, key: str) -> float:
        return percentage_change(self.sabre_cx, self.cx_by_combination[key])

    @property
    def all_enabled_reduction(self) -> float:
        return self.reduction("2q+c1+c2")

    @property
    def best_reduction(self) -> float:
        return max(self.reduction(key) for key in self.cx_by_combination)


def run_optimization_ablation(
    topology: str = "montreal",
    *,
    cases: Optional[Sequence[BenchmarkCase]] = None,
    seeds: Sequence[int] = (0,),
    num_device_qubits: int = 25,
    baseline: str = "sabre",
    executor: Optional[BatchTranspiler] = None,
    workers: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
) -> List[AblationRow]:
    """Regenerate one panel of Figure 9 (best-of-8 combinations vs all-enabled).

    Each benchmark contributes ``len(seeds) * 9`` jobs (the baseline method plus the 8
    NASSC combinations), all submitted as one batch through the executor.
    """
    coupling_map = get_topology(topology, num_device_qubits)
    if cases is None:
        cases = table_benchmarks(max_qubits=coupling_map.num_qubits)
    executor = _resolve_executor(executor, workers)
    eligible = [case for case in cases if case.num_qubits <= coupling_map.num_qubits]
    combinations = NASSCConfig.all_combinations()

    coupling = coupling_map.to_dict()
    job_lists: List[List[TranspileJob]] = []
    for case in eligible:
        qasm_text = qasm.dumps(case.build())
        jobs = [
            TranspileJob(
                qasm=qasm_text, routing=baseline, coupling_map=coupling, seed=seed,
                name=f"{case.name}[{baseline},s{seed}]",
            )
            for seed in seeds
        ]
        for config in combinations:
            key = AblationRow.combination_key(config)
            jobs.extend(
                TranspileJob(
                    qasm=qasm_text, routing="nassc", coupling_map=coupling, seed=seed,
                    nassc_config=config.as_tuple(), name=f"{case.name}[{key},s{seed}]",
                )
                for seed in seeds
            )
        job_lists.append(jobs)

    flat = [job for jobs in job_lists for job in jobs]
    results = iter(executor.results(flat, progress=progress))
    rows: List[AblationRow] = []
    for case, jobs in zip(eligible, job_lists):
        case_results = [next(results) for _ in jobs]
        sabre_counts = [r.cx_count for r in case_results[: len(seeds)]]
        row = AblationRow(name=case.name, sabre_cx=float(np.mean(sabre_counts)))
        for i, config in enumerate(combinations):
            chunk = case_results[(i + 1) * len(seeds) : (i + 2) * len(seeds)]
            row.cx_by_combination[AblationRow.combination_key(config)] = float(
                np.mean([r.cx_count for r in chunk])
            )
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Figure 11: noise-aware routing and success rate
# ---------------------------------------------------------------------------

@dataclass
class NoiseExperimentRow:
    """Added CNOTs and success rate of the four routing variants for one benchmark."""

    name: str
    original_cx: int
    added_cx: Dict[str, float] = field(default_factory=dict)
    success_rate: Dict[str, float] = field(default_factory=dict)


#: Default Figure-11 variant keys: each base routing method plain and noise-aware (HA).
NOISE_METHODS = ("sabre", "nassc", "sabre_ha", "nassc_ha")


def noise_method_variants(methods: Sequence[str] = ("sabre", "nassc")) -> List[str]:
    """Expand base routing-method names to the plain + ``_ha`` variant keys of Fig. 11."""
    return [f"{base}{suffix}" for base in methods for suffix in ("", "_ha")]


def run_noise_experiment(
    *,
    cases: Optional[Sequence[BenchmarkCase]] = None,
    shots: int = 8192,
    seed: int = 0,
    calibration: Optional[DeviceCalibration] = None,
    realizations: int = 256,
    methods: Sequence[str] = ("sabre", "nassc"),
    executor: Optional[BatchTranspiler] = None,
    workers: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
) -> List[NoiseExperimentRow]:
    """Regenerate Figure 11 using the synthetic ``ibmq_montreal`` calibration.

    The success rate of a routed circuit is the fraction of noisy shots that return the
    noise-free output of the *original* logical circuit, measured on the physical qubits that
    hold the logical qubits at the end of the routed circuit (the paper's definition of
    "correct output state").

    ``methods`` are base routing-method names from the registry; each is evaluated plain
    and noise-aware (``<method>_ha``).  All routing variants of every benchmark are
    transpiled as one job batch through the executor (the HA variants ship the
    calibrated target inside the job spec); the noisy simulation itself stays
    in-process.
    """
    from ..hardware.target import Target
    from ..simulator.statevector import StatevectorSimulator

    calibration = calibration or fake_montreal_calibration()
    target = Target(coupling_map=get_topology("montreal"), calibration=calibration)
    noise_model = NoiseModel.from_calibration(calibration)
    if cases is None:
        cases = noise_benchmarks()
    executor = _resolve_executor(executor, workers)
    variant_keys = noise_method_variants(methods)

    circuits = [case.build() for case in cases]
    coupling = target.coupling_map.to_dict()
    calibration_dict = calibration.to_dict()
    routing_jobs = [
        TranspileJob(
            qasm=qasm_text,
            routing=method[: -len("_ha")] if method.endswith("_ha") else method,
            coupling_map=coupling,
            seed=seed,
            calibration=calibration_dict if method.endswith("_ha") else None,
            noise_aware=method.endswith("_ha"),
            name=f"{case.name}[{method}]",
        )
        for case, qasm_text in zip(cases, (qasm.dumps(circuit) for circuit in circuits))
        for method in variant_keys
    ]
    routed_results = iter(executor.results(routing_jobs, progress=progress))

    ideal = StatevectorSimulator()
    rows: List[NoiseExperimentRow] = []
    for case, circuit in zip(cases, circuits):
        optimized = optimize_logical(circuit)
        row = NoiseExperimentRow(name=case.name, original_cx=optimized.cx_count())

        # Logical qubits whose outcome defines "the correct output state": the data register
        # for BV (its oracle ancilla ends in |->), the search register for Grover, and all
        # qubits for the reversible-oracle benchmarks.
        if case.name.startswith("bv"):
            logical_measured = list(range(circuit.num_qubits - 1))
        elif case.name.startswith("grover"):
            logical_measured = list(range((circuit.num_qubits + 2) // 2))
        else:
            logical_measured = list(range(circuit.num_qubits))

        # Noise-free reference outcome of the logical circuit (most likely bitstring,
        # highest measured qubit left-most).
        reference_counts = ideal.sample_counts(
            circuit.without_directives(), 4096, seed=1, measured_qubits=logical_measured
        )
        expected = max(reference_counts, key=reference_counts.get)

        for method in variant_keys:
            result = next(routed_results)
            # Measure the physical qubits holding each measured logical qubit at the end.
            measured_physical = [result.final_layout.physical(q) for q in logical_measured]
            routed = result.circuit.copy()
            for physical in measured_physical:
                # Touch every measured wire so idle logical qubits stay in the simulation.
                routed.id(physical)
            simulator = NoisySimulator(noise_model, realizations=realizations, seed=seed)
            row.added_cx[method] = result.cx_count - row.original_cx
            row.success_rate[method] = simulator.success_rate(
                routed, shots=shots, expected=expected, measured_qubits=measured_physical
            )
        rows.append(row)
    return rows

"""Experiment runners that regenerate the paper's tables and figures.

Each runner mirrors one artifact of the paper's evaluation (Sec. VI):

* :func:`run_table_experiment` — Tables I/II (``ibmq_montreal``), III (linear), IV (grid):
  added CNOTs, circuit depth and transpile time for Qiskit+SABRE vs Qiskit+NASSC.
* :func:`run_optimization_ablation` — Figure 9: CNOT reduction of the best of the 8
  optimization-combination subsets vs enabling all three optimizations.
* :func:`run_noise_experiment` — Figure 11: added CNOTs and success rate of SABRE, NASSC,
  SABRE+HA and NASSC+HA under the (synthetic) ``ibmq_montreal`` noise model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..benchlib.suite import BenchmarkCase, noise_benchmarks, table_benchmarks
from ..circuit.circuit import QuantumCircuit
from ..core.nassc import NASSCConfig
from ..core.pipeline import optimize_logical, transpile
from ..hardware.calibration import DeviceCalibration, fake_montreal_calibration
from ..hardware.coupling import CouplingMap
from ..hardware.topologies import get_topology
from ..simulator.noise import NoiseModel, NoisySimulator
from .metrics import geometric_mean_reduction, percentage_change


# ---------------------------------------------------------------------------
# Tables I-IV
# ---------------------------------------------------------------------------

@dataclass
class ComparisonRow:
    """One benchmark row comparing Qiskit+SABRE with Qiskit+NASSC."""

    name: str
    num_qubits: int
    original_cx: float
    original_depth: float
    sabre_cx: float
    sabre_depth: float
    sabre_time: float
    nassc_cx: float
    nassc_depth: float
    nassc_time: float

    @property
    def sabre_added_cx(self) -> float:
        return self.sabre_cx - self.original_cx

    @property
    def nassc_added_cx(self) -> float:
        return self.nassc_cx - self.original_cx

    @property
    def sabre_added_depth(self) -> float:
        return self.sabre_depth - self.original_depth

    @property
    def nassc_added_depth(self) -> float:
        return self.nassc_depth - self.original_depth

    @property
    def delta_cx_total(self) -> float:
        return percentage_change(self.sabre_cx, self.nassc_cx)

    @property
    def delta_cx_added(self) -> float:
        return percentage_change(self.sabre_added_cx, self.nassc_added_cx)

    @property
    def delta_depth_total(self) -> float:
        return percentage_change(self.sabre_depth, self.nassc_depth)

    @property
    def delta_depth_added(self) -> float:
        return percentage_change(self.sabre_added_depth, self.nassc_added_depth)

    @property
    def time_ratio(self) -> float:
        return self.nassc_time / self.sabre_time if self.sabre_time > 0 else float("nan")


@dataclass
class TableResult:
    """All rows of one table plus the paper's geometric-mean aggregates."""

    topology: str
    rows: List[ComparisonRow] = field(default_factory=list)

    @property
    def geomean_delta_cx_total(self) -> float:
        return geometric_mean_reduction(
            [r.sabre_cx for r in self.rows], [r.nassc_cx for r in self.rows]
        )

    @property
    def geomean_delta_cx_added(self) -> float:
        return geometric_mean_reduction(
            [max(r.sabre_added_cx, 1e-9) for r in self.rows],
            [max(r.nassc_added_cx, 1e-9) for r in self.rows],
        )

    @property
    def geomean_delta_depth_total(self) -> float:
        return geometric_mean_reduction(
            [r.sabre_depth for r in self.rows], [r.nassc_depth for r in self.rows]
        )

    @property
    def geomean_delta_depth_added(self) -> float:
        return geometric_mean_reduction(
            [max(r.sabre_added_depth, 1e-9) for r in self.rows],
            [max(r.nassc_added_depth, 1e-9) for r in self.rows],
        )

    @property
    def geomean_time_ratio(self) -> float:
        ratios = [r.time_ratio for r in self.rows if np.isfinite(r.time_ratio) and r.time_ratio > 0]
        if not ratios:
            return float("nan")
        return float(np.exp(np.mean(np.log(ratios))))


def compare_benchmark(
    case: BenchmarkCase,
    coupling_map: CouplingMap,
    *,
    seeds: Sequence[int] = (0,),
    nassc_config: Optional[NASSCConfig] = None,
) -> ComparisonRow:
    """Average SABRE-vs-NASSC comparison for one benchmark over the given seeds."""
    circuit = case.build()
    optimized = optimize_logical(circuit)
    original_cx = optimized.cx_count()
    original_depth = optimized.depth()

    sabre_cx, sabre_depth, sabre_time = [], [], []
    nassc_cx, nassc_depth, nassc_time = [], [], []
    for seed in seeds:
        sabre = transpile(circuit, coupling_map, routing="sabre", seed=seed)
        nassc = transpile(
            circuit, coupling_map, routing="nassc", seed=seed, nassc_config=nassc_config
        )
        sabre_cx.append(sabre.cx_count)
        sabre_depth.append(sabre.depth)
        sabre_time.append(sabre.transpile_time)
        nassc_cx.append(nassc.cx_count)
        nassc_depth.append(nassc.depth)
        nassc_time.append(nassc.transpile_time)

    return ComparisonRow(
        name=case.name,
        num_qubits=case.num_qubits,
        original_cx=original_cx,
        original_depth=original_depth,
        sabre_cx=float(np.mean(sabre_cx)),
        sabre_depth=float(np.mean(sabre_depth)),
        sabre_time=float(np.mean(sabre_time)),
        nassc_cx=float(np.mean(nassc_cx)),
        nassc_depth=float(np.mean(nassc_depth)),
        nassc_time=float(np.mean(nassc_time)),
    )


def run_table_experiment(
    topology: str = "montreal",
    *,
    cases: Optional[Sequence[BenchmarkCase]] = None,
    seeds: Sequence[int] = (0,),
    num_device_qubits: int = 25,
) -> TableResult:
    """Regenerate one of Tables I-IV (the table is chosen by ``topology``)."""
    coupling_map = get_topology(topology, num_device_qubits)
    if cases is None:
        cases = table_benchmarks(max_qubits=coupling_map.num_qubits)
    result = TableResult(topology=coupling_map.name)
    for case in cases:
        if case.num_qubits > coupling_map.num_qubits:
            continue
        result.rows.append(compare_benchmark(case, coupling_map, seeds=seeds))
    return result


# ---------------------------------------------------------------------------
# Figure 9: optimization-combination ablation
# ---------------------------------------------------------------------------

@dataclass
class AblationRow:
    """CNOT reduction vs SABRE for every optimization combination (one benchmark)."""

    name: str
    sabre_cx: float
    cx_by_combination: Dict[str, float] = field(default_factory=dict)

    @staticmethod
    def combination_key(config: NASSCConfig) -> str:
        bits = ["2q" if config.enable_2q_resynthesis else "--",
                "c1" if config.enable_commutation1 else "--",
                "c2" if config.enable_commutation2 else "--"]
        return "+".join(bits)

    def reduction(self, key: str) -> float:
        return percentage_change(self.sabre_cx, self.cx_by_combination[key])

    @property
    def all_enabled_reduction(self) -> float:
        return self.reduction("2q+c1+c2")

    @property
    def best_reduction(self) -> float:
        return max(self.reduction(key) for key in self.cx_by_combination)


def run_optimization_ablation(
    topology: str = "montreal",
    *,
    cases: Optional[Sequence[BenchmarkCase]] = None,
    seeds: Sequence[int] = (0,),
    num_device_qubits: int = 25,
) -> List[AblationRow]:
    """Regenerate one panel of Figure 9 (best-of-8 combinations vs all-enabled)."""
    coupling_map = get_topology(topology, num_device_qubits)
    if cases is None:
        cases = table_benchmarks(max_qubits=coupling_map.num_qubits)
    rows: List[AblationRow] = []
    for case in cases:
        if case.num_qubits > coupling_map.num_qubits:
            continue
        circuit = case.build()
        sabre_counts = []
        for seed in seeds:
            sabre_counts.append(transpile(circuit, coupling_map, routing="sabre", seed=seed).cx_count)
        row = AblationRow(name=case.name, sabre_cx=float(np.mean(sabre_counts)))
        for config in NASSCConfig.all_combinations():
            counts = []
            for seed in seeds:
                counts.append(
                    transpile(
                        circuit, coupling_map, routing="nassc", seed=seed, nassc_config=config
                    ).cx_count
                )
            row.cx_by_combination[AblationRow.combination_key(config)] = float(np.mean(counts))
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Figure 11: noise-aware routing and success rate
# ---------------------------------------------------------------------------

@dataclass
class NoiseExperimentRow:
    """Added CNOTs and success rate of the four routing variants for one benchmark."""

    name: str
    original_cx: int
    added_cx: Dict[str, float] = field(default_factory=dict)
    success_rate: Dict[str, float] = field(default_factory=dict)


NOISE_METHODS = ("sabre", "nassc", "sabre_ha", "nassc_ha")


def run_noise_experiment(
    *,
    cases: Optional[Sequence[BenchmarkCase]] = None,
    shots: int = 8192,
    seed: int = 0,
    calibration: Optional[DeviceCalibration] = None,
    realizations: int = 256,
) -> List[NoiseExperimentRow]:
    """Regenerate Figure 11 using the synthetic ``ibmq_montreal`` calibration.

    The success rate of a routed circuit is the fraction of noisy shots that return the
    noise-free output of the *original* logical circuit, measured on the physical qubits that
    hold the logical qubits at the end of the routed circuit (the paper's definition of
    "correct output state").
    """
    from ..simulator.statevector import StatevectorSimulator

    coupling_map = get_topology("montreal")
    calibration = calibration or fake_montreal_calibration()
    noise_model = NoiseModel.from_calibration(calibration)
    if cases is None:
        cases = noise_benchmarks()

    ideal = StatevectorSimulator()
    rows: List[NoiseExperimentRow] = []
    for case in cases:
        circuit = case.build()
        optimized = optimize_logical(circuit)
        row = NoiseExperimentRow(name=case.name, original_cx=optimized.cx_count())

        # Logical qubits whose outcome defines "the correct output state": the data register
        # for BV (its oracle ancilla ends in |->), the search register for Grover, and all
        # qubits for the reversible-oracle benchmarks.
        if case.name.startswith("bv"):
            logical_measured = list(range(circuit.num_qubits - 1))
        elif case.name.startswith("grover"):
            logical_measured = list(range((circuit.num_qubits + 2) // 2))
        else:
            logical_measured = list(range(circuit.num_qubits))

        # Noise-free reference outcome of the logical circuit (most likely bitstring,
        # highest measured qubit left-most).
        reference_counts = ideal.sample_counts(
            circuit.without_directives(), 4096, seed=1, measured_qubits=logical_measured
        )
        expected = max(reference_counts, key=reference_counts.get)

        for method in NOISE_METHODS:
            routing = "sabre" if method.startswith("sabre") else "nassc"
            noise_aware = method.endswith("_ha")
            result = transpile(
                circuit,
                coupling_map,
                routing=routing,
                seed=seed,
                calibration=calibration if noise_aware else None,
                noise_aware=noise_aware,
            )
            # Measure the physical qubits holding each measured logical qubit at the end.
            measured_physical = [result.final_layout.physical(q) for q in logical_measured]
            routed = result.circuit.copy()
            for physical in measured_physical:
                # Touch every measured wire so idle logical qubits stay in the simulation.
                routed.id(physical)
            simulator = NoisySimulator(noise_model, realizations=realizations, seed=seed)
            row.added_cx[method] = result.cx_count - row.original_cx
            row.success_rate[method] = simulator.success_rate(
                routed, shots=shots, expected=expected, measured_qubits=measured_physical
            )
        rows.append(row)
    return rows

"""Experiment harness regenerating the paper's tables and figures."""

from .experiments import (
    NOISE_METHODS,
    AblationRow,
    ComparisonRow,
    NoiseExperimentRow,
    TableResult,
    compare_benchmark,
    run_noise_experiment,
    run_optimization_ablation,
    run_table_experiment,
)
from .metrics import (
    RoutingMetrics,
    collect_metrics,
    count_summary,
    geometric_mean_reduction,
    is_equivalent_after_routing,
    percentage_change,
    routed_state_fidelity,
)
from .reporting import (
    cnot_table_to_csv,
    depth_table_to_csv,
    format_ablation,
    format_cnot_table,
    format_depth_table,
    format_noise_experiment,
)

__all__ = [
    "NOISE_METHODS",
    "AblationRow",
    "ComparisonRow",
    "NoiseExperimentRow",
    "TableResult",
    "compare_benchmark",
    "run_noise_experiment",
    "run_optimization_ablation",
    "run_table_experiment",
    "RoutingMetrics",
    "collect_metrics",
    "count_summary",
    "geometric_mean_reduction",
    "is_equivalent_after_routing",
    "percentage_change",
    "routed_state_fidelity",
    "cnot_table_to_csv",
    "depth_table_to_csv",
    "format_ablation",
    "format_cnot_table",
    "format_depth_table",
    "format_noise_experiment",
]

"""Metrics used by the paper's evaluation and by the test suite."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..core.pipeline import TranspileResult
from ..simulator.statevector import StatevectorSimulator, active_qubit_subcircuit


@dataclass
class RoutingMetrics:
    """Per-benchmark metrics matching the columns of Tables I-IV."""

    name: str
    num_qubits: int
    original_cx: int
    total_cx: int
    original_depth: int
    total_depth: int
    num_swaps: int
    transpile_time: float

    @property
    def added_cx(self) -> int:
        return self.total_cx - self.original_cx

    @property
    def added_depth(self) -> int:
        return self.total_depth - self.original_depth


def collect_metrics(
    name: str,
    original: QuantumCircuit,
    optimized_original: QuantumCircuit,
    result: TranspileResult,
) -> RoutingMetrics:
    """Build the metric record for one (benchmark, routing method) pair."""
    return RoutingMetrics(
        name=name,
        num_qubits=original.num_qubits,
        original_cx=optimized_original.cx_count(),
        total_cx=result.cx_count,
        original_depth=optimized_original.depth(),
        total_depth=result.depth,
        num_swaps=result.num_swaps,
        transpile_time=result.transpile_time,
    )


def percentage_change(baseline: float, new: float) -> float:
    """``1 - new/baseline`` as a percentage (the paper's delta columns); 0 when baseline is 0."""
    if baseline == 0:
        return 0.0
    return 100.0 * (1.0 - new / baseline)


def geometric_mean_reduction(baselines, news) -> float:
    """Geometric-mean percentage reduction, the paper's aggregate metric.

    Computed as ``1 - geomean(new_i / baseline_i)`` over pairs with a positive baseline.
    """
    ratios = [n / b for b, n in zip(baselines, news) if b > 0 and n > 0]
    if not ratios:
        return 0.0
    geomean = float(np.exp(np.mean(np.log(ratios))))
    return 100.0 * (1.0 - geomean)


def routed_state_fidelity(original: QuantumCircuit, result: TranspileResult) -> float:
    """Overlap between the routed circuit's output state and the original's (small circuits).

    The routed circuit acts on physical qubits: logical qubit ``q`` starts at
    ``initial_layout[q]`` and ends at ``final_layout[q]``.  Starting from ``|0...0>`` the
    routed output must equal the original output relocated to the final physical positions.
    """
    simulator = StatevectorSimulator()
    original_state = simulator.run(original.without_directives())

    routed = result.circuit.without_directives()
    reduced, active = active_qubit_subcircuit(routed)
    routed_state = simulator.run(reduced)

    final_layout = result.final_layout
    n_logical = original.num_qubits
    position = {}
    for q in range(n_logical):
        physical = final_layout.physical(q)
        if physical not in active:
            # The logical qubit was never touched; it stays in |0>.
            position[q] = None
        else:
            position[q] = active.index(physical)

    expected = np.zeros(2 ** len(active), dtype=complex)
    for idx in range(2 ** n_logical):
        target = 0
        skip = False
        for q in range(n_logical):
            if (idx >> q) & 1:
                if position[q] is None:
                    skip = True
                    break
                target |= 1 << position[q]
        if skip:
            if abs(original_state[idx]) > 1e-9:
                return 0.0
            continue
        expected[target] += original_state[idx]
    overlap = abs(np.vdot(expected, routed_state))
    return float(overlap)


def is_equivalent_after_routing(
    original: QuantumCircuit, result: TranspileResult, tol: float = 1e-6
) -> bool:
    """True if routing + optimization preserved the circuit semantics (up to the final layout)."""
    return routed_state_fidelity(original, result) > 1.0 - tol


def count_summary(circuit: QuantumCircuit) -> Dict[str, int]:
    """Compact operation summary used in reports."""
    ops = circuit.count_ops()
    return {
        "cx": ops.get("cx", 0),
        "single_qubit": sum(v for k, v in ops.items() if k not in ("cx", "barrier", "measure")),
        "depth": circuit.depth(),
        "size": circuit.size(),
    }

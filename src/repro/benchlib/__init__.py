"""Benchmark circuit generators used in the paper's evaluation."""

from .arithmetic import adder_n10, cuccaro_adder, multiplier, multiplier_n25
from .bv import bernstein_vazirani, bv_n5, bv_n19
from .grover import grover, grover_n4, grover_n6, grover_n8
from .mcx import apply_mcx, apply_mcz
from .qft import inverse_qft, qft, qft_n15, qft_n20, qpe, qpe_n9
from .revlib import (
    REVLIB_SPECS,
    RevLibSpec,
    co14_215,
    decod24_v2_43,
    mct_network,
    mod5d2_64,
    mod5mils_65,
    rd84_253,
    revlib_benchmark,
    sqn_258,
    sym9_193,
)
from .suite import (
    NOISE_BENCHMARKS,
    TABLE_BENCHMARKS,
    BenchmarkCase,
    benchmark_names,
    get_benchmark,
    noise_benchmarks,
    table_benchmarks,
)
from .vqe import vqe_ansatz, vqe_n8, vqe_n12

__all__ = [
    "adder_n10", "cuccaro_adder", "multiplier", "multiplier_n25",
    "bernstein_vazirani", "bv_n5", "bv_n19",
    "grover", "grover_n4", "grover_n6", "grover_n8",
    "apply_mcx", "apply_mcz",
    "inverse_qft", "qft", "qft_n15", "qft_n20", "qpe", "qpe_n9",
    "REVLIB_SPECS", "RevLibSpec", "co14_215", "decod24_v2_43", "mct_network",
    "mod5d2_64", "mod5mils_65", "rd84_253", "revlib_benchmark", "sqn_258", "sym9_193",
    "NOISE_BENCHMARKS", "TABLE_BENCHMARKS", "BenchmarkCase", "benchmark_names",
    "get_benchmark", "noise_benchmarks", "table_benchmarks",
    "vqe_ansatz", "vqe_n8", "vqe_n12",
]

"""Reversible arithmetic benchmarks: ripple-carry adder and shift-and-add multiplier
(paper benchmarks Adder_n10 and Multiplier_n25).
"""

from __future__ import annotations

from typing import List, Optional

from ..circuit.circuit import QuantumCircuit
from ..exceptions import CircuitError


def _maj(circuit: QuantumCircuit, c: int, b: int, a: int) -> None:
    """Cuccaro MAJ block."""
    circuit.cx(a, b)
    circuit.cx(a, c)
    circuit.ccx(c, b, a)


def _uma(circuit: QuantumCircuit, c: int, b: int, a: int) -> None:
    """Cuccaro UMA block (2-CNOT version)."""
    circuit.ccx(c, b, a)
    circuit.cx(a, c)
    circuit.cx(c, b)


def cuccaro_adder(num_bits: int, *, with_carry_out: bool = True, name: Optional[str] = None) -> QuantumCircuit:
    """Cuccaro ripple-carry adder computing ``b := a + b`` on two ``num_bits`` registers.

    Qubit layout: ``cin`` (1 qubit), interleaved ``a``/``b`` registers, ``cout`` (1 qubit when
    ``with_carry_out``).  Total ``2 * num_bits + 2`` qubits: the paper's 10-qubit adder is the
    4-bit instance.
    """
    if num_bits < 1:
        raise CircuitError("adder needs at least one bit")
    total = 2 * num_bits + (2 if with_carry_out else 1)
    circuit = QuantumCircuit(total, name=name or f"adder_n{total}")
    cin = 0
    a = [1 + 2 * i for i in range(num_bits)]
    b = [2 + 2 * i for i in range(num_bits)]
    cout = total - 1 if with_carry_out else None

    _maj(circuit, cin, b[0], a[0])
    for i in range(1, num_bits):
        _maj(circuit, a[i - 1], b[i], a[i])
    if cout is not None:
        circuit.cx(a[-1], cout)
    for i in reversed(range(1, num_bits)):
        _uma(circuit, a[i - 1], b[i], a[i])
    _uma(circuit, cin, b[0], a[0])
    return circuit


def adder_n10() -> QuantumCircuit:
    """4-bit Cuccaro adder on 10 qubits."""
    return cuccaro_adder(4)


def multiplier(num_bits: int, name: Optional[str] = None) -> QuantumCircuit:
    """Carry-less (GF(2)) multiplier on ``4 * num_bits + 1`` qubits.

    Registers: ``a`` (``num_bits``), ``b`` (``num_bits``), product (``2 * num_bits``) and one
    parity ancilla.  Every partial product ``a_i AND b_j`` is XORed into ``product[i+j]`` with
    a Toffoli, computing the carry-less product of the two inputs; the final parity of the
    product is collected into the last qubit.  The paper's 25-qubit multiplier corresponds to
    ``num_bits = 6``.  This is bit-exact GF(2) arithmetic (verified by simulation in the
    tests) and has the same dense Toffoli-network structure as the QASMBench shift-and-add
    multiplier it substitutes for (see DESIGN.md).
    """
    if num_bits < 1:
        raise CircuitError("multiplier needs at least one bit")
    total = 4 * num_bits + 1
    circuit = QuantumCircuit(total, name=name or f"multiplier_n{total}")
    a = list(range(num_bits))
    b = list(range(num_bits, 2 * num_bits))
    product = list(range(2 * num_bits, 4 * num_bits))
    parity = total - 1

    for i in range(num_bits):
        for j in range(num_bits):
            circuit.ccx(a[i], b[j], product[i + j])
    for bit in product:
        circuit.cx(bit, parity)
    return circuit


def multiplier_n25() -> QuantumCircuit:
    """6-bit carry-less multiplier workload on 25 qubits."""
    return multiplier(6)

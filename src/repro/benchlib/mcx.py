"""Multi-controlled X/Z construction helpers shared by the benchmark generators."""

from __future__ import annotations

from typing import List, Sequence

from ..circuit.circuit import QuantumCircuit
from ..exceptions import CircuitError


def apply_mcx(
    circuit: QuantumCircuit,
    controls: Sequence[int],
    target: int,
    ancillas: Sequence[int] = (),
) -> None:
    """Apply a multi-controlled X using a clean-ancilla V-chain.

    ``k`` controls need ``k - 2`` clean ancillas (assumed to be in state ``|0>`` and returned
    to ``|0>``).  For one or two controls no ancillas are needed.
    """
    controls = list(controls)
    k = len(controls)
    if k == 0:
        circuit.x(target)
        return
    if k == 1:
        circuit.cx(controls[0], target)
        return
    if k == 2:
        circuit.ccx(controls[0], controls[1], target)
        return
    needed = k - 2
    if len(ancillas) < needed:
        raise CircuitError(
            f"multi-controlled X with {k} controls needs {needed} clean ancillas, got {len(ancillas)}"
        )
    chain: List[int] = list(ancillas[:needed])
    # Compute the AND chain into the ancillas.
    circuit.ccx(controls[0], controls[1], chain[0])
    for i in range(2, k - 1):
        circuit.ccx(controls[i], chain[i - 2], chain[i - 1])
    circuit.ccx(controls[k - 1], chain[-1], target)
    # Uncompute the chain.
    for i in range(k - 2, 1, -1):
        circuit.ccx(controls[i], chain[i - 2], chain[i - 1])
    circuit.ccx(controls[0], controls[1], chain[0])


def apply_mcz(
    circuit: QuantumCircuit,
    controls: Sequence[int],
    target: int,
    ancillas: Sequence[int] = (),
) -> None:
    """Multi-controlled Z via H-conjugation of the multi-controlled X."""
    circuit.h(target)
    apply_mcx(circuit, controls, target, ancillas)
    circuit.h(target)

"""VQE hardware-efficient ansatz benchmarks (paper benchmarks VQE_n8, VQE_n12).

The ansatz is the "two-local, full entanglement" circuit: alternating layers of single-qubit
Ry/Rz rotations and a full CNOT entanglement layer (one CNOT per qubit pair), repeated
``reps`` times.  With 3 repetitions the CNOT totals match the paper's original-circuit
column (84 for 8 qubits, 198 for 12 qubits).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..circuit.circuit import QuantumCircuit


def vqe_ansatz(num_qubits: int, reps: int = 3, seed: Optional[int] = 7) -> QuantumCircuit:
    """Two-local full-entanglement VQE ansatz with random bound parameters."""
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, name=f"vqe_n{num_qubits}")
    for q in range(num_qubits):
        circuit.ry(float(rng.uniform(0, 2 * np.pi)), q)
        circuit.rz(float(rng.uniform(0, 2 * np.pi)), q)
    for _ in range(reps):
        for a in range(num_qubits):
            for b in range(a + 1, num_qubits):
                circuit.cx(a, b)
        for q in range(num_qubits):
            circuit.ry(float(rng.uniform(0, 2 * np.pi)), q)
            circuit.rz(float(rng.uniform(0, 2 * np.pi)), q)
    return circuit


def vqe_n8() -> QuantumCircuit:
    return vqe_ansatz(8)


def vqe_n12() -> QuantumCircuit:
    return vqe_ansatz(12)

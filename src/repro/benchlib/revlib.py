"""Synthetic RevLib-style reversible benchmark circuits.

The paper's largest benchmarks (``sqn_258``, ``rd84_253``, ``co14_215``, ``sym9_193``) and the
small Fig. 11 oracles (``mod5mils_65``, ``decod24-v2_43``, ``mod5d2_64``) are RevLib /
QASMBench circuit files that are not redistributable here.  These generators build synthetic
stand-ins: seeded random networks over the MCT gate library (X, CNOT, Toffoli) with the same
qubit counts and a configurable fraction of the original two-qubit-gate volume.  They
exercise the same routing/optimization behaviour (long CNOT chains, dense adjacent two-qubit
blocks) — see the substitution notes in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..circuit.circuit import QuantumCircuit


@dataclass(frozen=True)
class RevLibSpec:
    """Qubit count and original CNOT volume of a RevLib benchmark from the paper (Table I)."""

    name: str
    num_qubits: int
    paper_cnot_total: int
    seed: int


REVLIB_SPECS: Dict[str, RevLibSpec] = {
    "sqn_258": RevLibSpec("sqn_258", 10, 4459, seed=258),
    "rd84_253": RevLibSpec("rd84_253", 12, 5960, seed=253),
    "co14_215": RevLibSpec("co14_215", 15, 7840, seed=215),
    "sym9_193": RevLibSpec("sym9_193", 11, 15232, seed=193),
    "mod5mils_65": RevLibSpec("mod5mils_65", 5, 16, seed=65),
    "decod24-v2_43": RevLibSpec("decod24-v2_43", 4, 22, seed=43),
    "mod5d2_64": RevLibSpec("mod5d2_64", 5, 25, seed=64),
}

#: Average CNOTs contributed by one random MCT gate (ccx = 6, cx = 1, x = 0) with the
#: gate-mix used by :func:`mct_network`.
_AVG_CNOT_PER_GATE = 0.25 * 0 + 0.35 * 1 + 0.40 * 6


def mct_network(
    num_qubits: int,
    num_gates: int,
    seed: Optional[int] = None,
    name: str = "mct_network",
) -> QuantumCircuit:
    """Random reversible circuit over the MCT gate library {X, CNOT, Toffoli}."""
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, name=name)
    for _ in range(num_gates):
        roll = rng.random()
        if roll < 0.25 or num_qubits < 2:
            circuit.x(int(rng.integers(num_qubits)))
        elif roll < 0.60 or num_qubits < 3:
            control, target = rng.choice(num_qubits, size=2, replace=False)
            circuit.cx(int(control), int(target))
        else:
            c0, c1, target = rng.choice(num_qubits, size=3, replace=False)
            circuit.ccx(int(c0), int(c1), int(target))
    return circuit


def revlib_benchmark(name: str, scale: float = 0.15) -> QuantumCircuit:
    """Synthetic stand-in for one of the paper's RevLib benchmarks.

    ``scale`` is the fraction of the paper circuit's CNOT volume to generate; the default of
    0.15 keeps the full evaluation harness runnable on a laptop while preserving the relative
    behaviour of the routing algorithms (EXPERIMENTS.md records the actual sizes used).
    """
    spec = REVLIB_SPECS[name]
    target_cnots = max(8, int(round(spec.paper_cnot_total * scale)))
    num_gates = max(4, int(round(target_cnots / _AVG_CNOT_PER_GATE)))
    circuit = mct_network(spec.num_qubits, num_gates, seed=spec.seed, name=name)
    circuit.metadata["paper_cnot_total"] = spec.paper_cnot_total
    circuit.metadata["scale"] = scale
    return circuit


def sqn_258(scale: float = 0.15) -> QuantumCircuit:
    return revlib_benchmark("sqn_258", scale)


def rd84_253(scale: float = 0.15) -> QuantumCircuit:
    return revlib_benchmark("rd84_253", scale)


def co14_215(scale: float = 0.15) -> QuantumCircuit:
    return revlib_benchmark("co14_215", scale)


def sym9_193(scale: float = 0.15) -> QuantumCircuit:
    return revlib_benchmark("sym9_193", scale)


def mod5mils_65() -> QuantumCircuit:
    return revlib_benchmark("mod5mils_65", scale=1.0)


def decod24_v2_43() -> QuantumCircuit:
    return revlib_benchmark("decod24-v2_43", scale=1.0)


def mod5d2_64() -> QuantumCircuit:
    return revlib_benchmark("mod5d2_64", scale=1.0)

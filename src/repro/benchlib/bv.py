"""Bernstein-Vazirani benchmark circuits (paper benchmark BV_n19 and the Fig. 11 BV)."""

from __future__ import annotations

from typing import Optional, Sequence

from ..circuit.circuit import QuantumCircuit


def bernstein_vazirani(num_qubits: int, secret: Optional[Sequence[int]] = None) -> QuantumCircuit:
    """Bernstein-Vazirani with ``num_qubits - 1`` data qubits and one oracle ancilla.

    ``secret`` defaults to the all-ones string (matching the paper's 18-CNOT original circuit
    for 19 qubits).
    """
    data = num_qubits - 1
    if secret is None:
        secret = [1] * data
    secret = list(secret)[:data]
    circuit = QuantumCircuit(num_qubits, name=f"bv_n{num_qubits}")
    ancilla = num_qubits - 1
    for q in range(data):
        circuit.h(q)
    circuit.x(ancilla)
    circuit.h(ancilla)
    for q, bit in enumerate(secret):
        if bit:
            circuit.cx(q, ancilla)
    for q in range(data):
        circuit.h(q)
    return circuit


def bv_n19() -> QuantumCircuit:
    return bernstein_vazirani(19)


def bv_n5() -> QuantumCircuit:
    return bernstein_vazirani(5)

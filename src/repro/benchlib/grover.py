"""Grover search benchmark circuits (paper benchmarks Grover_n4, Grover_n6, Grover_n8).

The circuits follow the QASMBench-style construction: a search register of ``s`` qubits plus
``s - 2`` clean ancillas used by the multi-controlled gates, i.e. ``n = 2s - 2`` total qubits
(``n=4 -> s=3``, ``n=6 -> s=4``, ``n=8 -> s=5``).  The oracle marks the all-ones state.
"""

from __future__ import annotations

import math
from typing import Optional

from ..circuit.circuit import QuantumCircuit
from ..exceptions import CircuitError
from .mcx import apply_mcz


def _register_split(num_qubits: int) -> int:
    """Search-register size for a given total qubit count (rest are ancillas)."""
    search = (num_qubits + 2) // 2
    if search < 2:
        raise CircuitError("Grover benchmark needs at least 2 search qubits")
    return search


def grover(num_qubits: int, iterations: Optional[int] = None) -> QuantumCircuit:
    """Grover search over ``s`` qubits with the all-ones marked state."""
    search = _register_split(num_qubits)
    ancillas = list(range(search, num_qubits))
    if len(ancillas) < max(0, search - 3):
        raise CircuitError("not enough ancillas for the multi-controlled oracle")
    if iterations is None:
        iterations = max(1, int(math.floor(math.pi / 4.0 * math.sqrt(2 ** search))))

    circuit = QuantumCircuit(num_qubits, name=f"grover_n{num_qubits}")
    data = list(range(search))
    for q in data:
        circuit.h(q)
    for _ in range(iterations):
        # Oracle: phase-flip the all-ones state.
        apply_mcz(circuit, data[:-1], data[-1], ancillas)
        # Diffusion operator.
        for q in data:
            circuit.h(q)
            circuit.x(q)
        apply_mcz(circuit, data[:-1], data[-1], ancillas)
        for q in data:
            circuit.x(q)
            circuit.h(q)
    return circuit


def grover_n4() -> QuantumCircuit:
    return grover(4)


def grover_n6() -> QuantumCircuit:
    return grover(6)


def grover_n8() -> QuantumCircuit:
    return grover(8)

"""Benchmark suite registry matching the paper's evaluation (Sec. V / Tables I-IV / Fig. 11)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..circuit.circuit import QuantumCircuit
from .arithmetic import adder_n10, cuccaro_adder, multiplier, multiplier_n25
from .bv import bernstein_vazirani, bv_n5, bv_n19
from .grover import grover, grover_n4, grover_n6, grover_n8
from .qft import qft, qft_n15, qft_n20, qpe, qpe_n9
from .revlib import (
    REVLIB_SPECS,
    co14_215,
    decod24_v2_43,
    mod5d2_64,
    mod5mils_65,
    rd84_253,
    revlib_benchmark,
    sqn_258,
    sym9_193,
)
from .vqe import vqe_ansatz, vqe_n8, vqe_n12


@dataclass(frozen=True)
class BenchmarkCase:
    """One benchmark row of Tables I-IV."""

    name: str
    num_qubits: int
    builder: Callable[[], QuantumCircuit]
    paper_cnot_total: Optional[int] = None

    def build(self) -> QuantumCircuit:
        circuit = self.builder()
        circuit.name = self.name
        return circuit


#: The 15 benchmarks of Tables I, II, III and IV with the paper's original CNOT totals.
TABLE_BENCHMARKS: List[BenchmarkCase] = [
    BenchmarkCase("grover_n4", 4, grover_n4, 84),
    BenchmarkCase("grover_n6", 6, grover_n6, 184),
    BenchmarkCase("grover_n8", 8, grover_n8, 760),
    BenchmarkCase("vqe_n8", 8, vqe_n8, 84),
    BenchmarkCase("vqe_n12", 12, vqe_n12, 198),
    BenchmarkCase("bv_n19", 19, bv_n19, 18),
    BenchmarkCase("qft_n15", 15, qft_n15, 210),
    BenchmarkCase("qft_n20", 20, qft_n20, 374),
    BenchmarkCase("qpe_n9", 9, qpe_n9, 43),
    BenchmarkCase("adder_n10", 10, adder_n10, 65),
    BenchmarkCase("multiplier_n25", 25, multiplier_n25, 670),
    BenchmarkCase("sqn_258", 10, sqn_258, 4459),
    BenchmarkCase("rd84_253", 12, rd84_253, 5960),
    BenchmarkCase("co14_215", 15, co14_215, 7840),
    BenchmarkCase("sym9_193", 11, sym9_193, 15232),
]

#: The small benchmarks used for the noise-model / success-rate experiment (Fig. 11).
NOISE_BENCHMARKS: List[BenchmarkCase] = [
    BenchmarkCase("bv_n5", 5, bv_n5),
    BenchmarkCase("mod5mils_65", 5, mod5mils_65),
    BenchmarkCase("decod24-v2_43", 4, decod24_v2_43),
    BenchmarkCase("mod5d2_64", 5, mod5d2_64),
    BenchmarkCase("grover_n4", 4, grover_n4),
]

_REGISTRY: Dict[str, BenchmarkCase] = {case.name: case for case in TABLE_BENCHMARKS}
_REGISTRY.update({case.name: case for case in NOISE_BENCHMARKS})


def benchmark_names() -> List[str]:
    """All registered benchmark names."""
    return sorted(_REGISTRY)


def get_benchmark(name: str) -> QuantumCircuit:
    """Build a registered benchmark circuit by name."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown benchmark {name!r}; known: {benchmark_names()}")
    return _REGISTRY[name].build()


def table_benchmarks(
    *, max_qubits: Optional[int] = None, names: Optional[List[str]] = None
) -> List[BenchmarkCase]:
    """The Table I-IV benchmark list, optionally filtered."""
    cases = TABLE_BENCHMARKS
    if names is not None:
        wanted = set(names)
        cases = [case for case in cases if case.name in wanted]
    if max_qubits is not None:
        cases = [case for case in cases if case.num_qubits <= max_qubits]
    return list(cases)


def noise_benchmarks() -> List[BenchmarkCase]:
    """The Figure 11 benchmark list."""
    return list(NOISE_BENCHMARKS)

"""Quantum Fourier transform and phase-estimation benchmarks (QFT_n15, QFT_n20, QPE_n9)."""

from __future__ import annotations

import math
from typing import Optional

from ..circuit.circuit import QuantumCircuit


def qft(num_qubits: int, *, do_swaps: bool = False, approximation_degree: int = 0) -> QuantumCircuit:
    """Standard QFT built from Hadamards and controlled-phase rotations.

    ``approximation_degree`` drops the smallest-angle rotations (0 keeps everything).
    """
    circuit = QuantumCircuit(num_qubits, name=f"qft_n{num_qubits}")
    for target in reversed(range(num_qubits)):
        circuit.h(target)
        for distance, control in enumerate(reversed(range(target)), start=1):
            if approximation_degree and distance > num_qubits - approximation_degree:
                continue
            circuit.cp(math.pi / (2 ** distance), control, target)
    if do_swaps:
        for q in range(num_qubits // 2):
            circuit.swap(q, num_qubits - 1 - q)
    return circuit


def inverse_qft(num_qubits: int, **kwargs) -> QuantumCircuit:
    """Inverse QFT (adjoint of :func:`qft`)."""
    forward = qft(num_qubits, **kwargs)
    inverse = forward.inverse()
    inverse.name = f"iqft_n{num_qubits}"
    return inverse


def qft_n15() -> QuantumCircuit:
    return qft(15)


def qft_n20() -> QuantumCircuit:
    return qft(20)


def qpe(num_counting: int, phase: float = 1.0 / 3.0) -> QuantumCircuit:
    """Quantum phase estimation of a single-qubit phase gate with eigenphase ``phase``.

    ``num_counting`` counting qubits plus one eigenstate qubit (prepared in ``|1>``).
    """
    num_qubits = num_counting + 1
    target = num_counting
    circuit = QuantumCircuit(num_qubits, name=f"qpe_n{num_qubits}")
    circuit.x(target)
    for q in range(num_counting):
        circuit.h(q)
    for j in range(num_counting):
        angle = 2.0 * math.pi * phase * (2 ** j)
        circuit.cp(angle, j, target)
    inverse = inverse_qft(num_counting)
    return circuit.compose(inverse, qubits=list(range(num_counting)))


def qpe_n9() -> QuantumCircuit:
    return qpe(8)

"""CNOT-reduction estimators for SWAP candidates (paper Sec. IV-D and IV-E).

For every candidate SWAP considered during routing, NASSC estimates how many of the three
CNOTs the SWAP would normally cost can be recovered by the subsequent optimizations:

* ``C2q`` — reduction from re-synthesising the two-qubit block the SWAP would join
  (0, 1, 2 or 3).
* ``Ccommute1`` — reduction (0 or 2) from cancelling the SWAP's first CNOT against a CNOT
  already in the circuit through commutation.
* ``Ccommute2`` — reduction (0 or 2) from cancelling CNOTs across two SWAP gates that
  sandwich a commute set.

The estimators inspect the *already routed* part of the circuit (the resolved layer), which
is exactly the information the compiler has at SWAP-insertion time.  ``out`` is anything
exposing a positional ``data`` list of instructions — the router's live
:class:`~repro.transpiler.passes.sabre.RoutedOutput` during routing, or a plain
:class:`~repro.circuit.circuit.QuantumCircuit` in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuit.circuit import Instruction, QuantumCircuit
from ..circuit.gates import gate as make_gate
from ..synthesis.two_qubit import cnot_count_from_coordinates, weyl_coordinates
from ..transpiler.passes.commutation import gates_commute

_SWAP_MATRIX = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)

#: Maximum number of trailing gates examined when reconstructing the preceding block.
MAX_BLOCK_GATES = 8
#: Maximum number of gates scanned through a commute set (paper Sec. IV-E uses 20).
MAX_COMMUTE_SCAN = 20


@dataclass
class SwapEstimate:
    """Estimated CNOT reductions for one candidate SWAP."""

    c2q: int = 0
    ccommute1: int = 0
    ccommute2: int = 0
    orientation: Optional[int] = None  # physical qubit that should control the first CNOT

    def total(self, enable_2q: bool = True, enable_commute1: bool = True,
              enable_commute2: bool = True) -> int:
        total = 0
        if enable_2q:
            total += self.c2q
        if enable_commute1:
            total += self.ccommute1
        if enable_commute2:
            total += self.ccommute2
        return total


class OptimizationEstimator:
    """Shared estimator used by the NASSC router for every SWAP candidate."""

    #: Process-wide Weyl CNOT-count memo.  Keys are content signatures, values a pure
    #: function of the key, so sharing across instances (e.g. the per-trial routers of a
    #: best-of-N ensemble) cannot change any estimate — it only skips repeat synthesis.
    _count_cache: Dict[Tuple, int] = {}

    def __init__(self) -> None:
        self._probe_cache: Dict[Tuple[int, int], Instruction] = {}
        # Per-output memo of scan-step outcomes, keyed by (position, control, target).
        # Valid because ``out`` is append-only with immutable entries: an already-seen
        # position always classifies identically.  Reset whenever a different output
        # object shows up (each routing run creates a fresh one).
        self._scan_out: Optional[QuantumCircuit] = None
        self._scan_memo: Dict[Tuple[int, int, int], Optional[Tuple[bool, bool]]] = {}

    def _probe_cx(self, control: int, target: int) -> Instruction:
        """Shared ``cx(control, target)`` probe instruction (one allocation per pair)."""
        probe = self._probe_cache.get((control, target))
        if probe is None:
            probe = Instruction(make_gate("cx"), (control, target))
            self._probe_cache[(control, target)] = probe
        return probe

    # ------------------------------------------------------------------
    # Helpers over the routed prefix
    # ------------------------------------------------------------------

    @staticmethod
    def _merged_backward(
        out: QuantumCircuit, wire_history: Dict[int, List[int]], p0: int, p1: int
    ):
        """Iterate backward over output positions touching ``p0`` or ``p1`` (no duplicates)."""
        i0 = len(wire_history[p0]) - 1
        i1 = len(wire_history[p1]) - 1
        while i0 >= 0 or i1 >= 0:
            pos0 = wire_history[p0][i0] if i0 >= 0 else -1
            pos1 = wire_history[p1][i1] if i1 >= 0 else -1
            pos = max(pos0, pos1)
            if pos < 0:
                return
            if pos == pos0:
                i0 -= 1
            if pos == pos1:
                i1 -= 1
            yield pos, out.data[pos]

    def trailing_block(
        self,
        out: QuantumCircuit,
        wire_history: Dict[int, List[int]],
        p0: int,
        p1: int,
        max_gates: int = MAX_BLOCK_GATES,
    ) -> List[int]:
        """Positions of the maximal trailing run of gates confined to ``{p0, p1}``."""
        block: List[int] = []
        for pos, inst in self._merged_backward(out, wire_history, p0, p1):
            if len(block) >= max_gates:
                break
            if (not inst.gate.is_unitary) or inst.name == "barrier":
                break
            if not set(inst.qubits) <= {p0, p1}:
                break
            block.append(pos)
        return sorted(block)

    # ------------------------------------------------------------------
    # C2q: two-qubit block re-synthesis
    # ------------------------------------------------------------------

    def _block_signature(self, out: QuantumCircuit, positions: Sequence[int], p0: int, p1: int) -> Tuple:
        mapping = {p0: 0, p1: 1}
        signature = []
        for pos in positions:
            op = out.data[pos]
            if op.name == "unitary":
                # Explicit-matrix gates have no content token; key on the matrix itself
                # so two different unitaries never share a memoised CNOT count.
                token = ("unitary", op.gate.matrix().tobytes())
            else:
                token = op.gate.cache_token
            signature.append((token, tuple(mapping[q] for q in op.qubits)))
        return tuple(signature)

    def _block_matrix(self, out: QuantumCircuit, positions: Sequence[int], p0: int, p1: int) -> np.ndarray:
        local = QuantumCircuit(2)
        mapping = {p0: 0, p1: 1}
        for pos in positions:
            inst = out.data[pos]
            local.append(inst.gate.copy(), tuple(mapping[q] for q in inst.qubits))
        return local.to_matrix()

    def _cached_count(self, key: Tuple, matrix_fn) -> int:
        if key not in self._count_cache:
            coords = weyl_coordinates(matrix_fn())
            self._count_cache[key] = cnot_count_from_coordinates(coords)
            if len(self._count_cache) > 200000:
                self._count_cache.clear()
        return self._count_cache[key]

    def estimate_c2q(
        self,
        out: QuantumCircuit,
        wire_history: Dict[int, List[int]],
        p0: int,
        p1: int,
    ) -> int:
        """CNOT reduction from merging the SWAP into the trailing block on ``(p0, p1)``."""
        block = self.trailing_block(out, wire_history, p0, p1)
        if not any(len(out.data[pos].qubits) == 2 for pos in block):
            return 0
        signature = self._block_signature(out, block, p0, p1)
        # Build the block matrix lazily: when both CNOT counts are already memoised by
        # signature (the common case on warm caches) the matrix is never materialised.
        materialised: List[np.ndarray] = []

        def block_matrix() -> np.ndarray:
            if not materialised:
                materialised.append(self._block_matrix(out, block, p0, p1))
            return materialised[0]

        count_before = self._cached_count(("blk", signature), block_matrix)
        count_after = self._cached_count(
            ("blk+swap", signature), lambda: _SWAP_MATRIX @ block_matrix()
        )
        reduction = 3 - (count_after - count_before)
        return int(max(0, min(3, reduction)))

    # ------------------------------------------------------------------
    # Ccommute1 / Ccommute2: commutation-based cancellation
    # ------------------------------------------------------------------

    def _scan_for_cancellation(
        self,
        out: QuantumCircuit,
        wire_history: Dict[int, List[int]],
        p0: int,
        p1: int,
        control: int,
        target: int,
    ) -> Tuple[bool, bool]:
        """Scan backward for a CNOT or SWAP on ``(p0, p1)`` reachable through a commute set.

        Returns ``(found_cx, found_swap)`` for the first matching gate whose first CNOT of the
        candidate SWAP (``cx(control, target)``) could cancel with it.  The scan skips
        single-qubit gates (they are moved through the SWAP, Sec. IV-E) and gates that commute
        with ``cx(control, target)``.
        """
        if out is not self._scan_out:
            self._scan_out = out
            self._scan_memo = {}
        memo = self._scan_memo
        scanned = 0
        for pos, inst in self._merged_backward(out, wire_history, p0, p1):
            if scanned >= MAX_COMMUTE_SCAN:
                break
            scanned += 1
            # ``None`` means "skip and keep scanning"; a tuple is the scan's verdict.
            key = (pos, control, target)
            if key in memo:
                step = memo[key]
            else:
                step = self._scan_step(inst, p0, p1, control, target)
                memo[key] = step
            if step is None:
                continue
            return step
        return False, False

    def _scan_step(
        self, inst: Instruction, p0: int, p1: int, control: int, target: int
    ) -> Optional[Tuple[bool, bool]]:
        """Classify one scanned instruction: ``None`` to keep scanning, else the verdict."""
        if (not inst.gate.is_unitary) or inst.name == "barrier":
            return False, False
        if len(inst.qubits) == 1:
            # Single-qubit gates before a SWAP are moved to the swapped wire.
            return None
        if inst.name == "cx" and set(inst.qubits) == {p0, p1}:
            if inst.qubits == (control, target):
                return True, False
            return False, False
        if inst.name == "swap" and set(inst.qubits) == {p0, p1}:
            from ..transpiler.passes.swap_lowering import swap_orientation

            previous_control = swap_orientation(inst.gate.label, inst.qubits)
            # The last CNOT of the previous SWAP has the same orientation as its first.
            return False, previous_control == control
        if gates_commute(inst, self._probe_cx(control, target)):
            return None
        return False, False

    def estimate_commutation(
        self,
        out: QuantumCircuit,
        wire_history: Dict[int, List[int]],
        p0: int,
        p1: int,
    ) -> Tuple[int, int, Optional[int]]:
        """``(Ccommute1, Ccommute2, orientation)`` for a SWAP candidate on ``(p0, p1)``."""
        for control, target in ((p0, p1), (p1, p0)):
            found_cx, found_swap = self._scan_for_cancellation(
                out, wire_history, p0, p1, control, target
            )
            if found_cx:
                return 2, 0, control
            if found_swap:
                return 0, 2, control
        return 0, 0, None

    # ------------------------------------------------------------------

    def estimate(
        self,
        out: QuantumCircuit,
        wire_history: Dict[int, List[int]],
        p0: int,
        p1: int,
        *,
        enable_2q: bool = True,
        enable_commute1: bool = True,
        enable_commute2: bool = True,
    ) -> SwapEstimate:
        """Full estimate for a candidate SWAP on physical qubits ``(p0, p1)``."""
        estimate = SwapEstimate()
        if enable_2q:
            estimate.c2q = self.estimate_c2q(out, wire_history, p0, p1)
        if enable_commute1 or enable_commute2:
            commute1, commute2, orientation = self.estimate_commutation(
                out, wire_history, p0, p1
            )
            estimate.ccommute1 = commute1 if enable_commute1 else 0
            estimate.ccommute2 = commute2 if enable_commute2 else 0
            if (estimate.ccommute1 or estimate.ccommute2) and orientation is not None:
                estimate.orientation = orientation
        return estimate

"""Streaming transpilation: compile unbounded instruction streams in O(window) memory.

:func:`transpile_stream` is the generator twin of :func:`repro.core.pipeline.transpile`
for the million-gate workload class: instructions are pulled lazily from the source (a
:class:`~repro.circuit.qasm.QASMStreamReader`, an in-memory circuit, or any instruction
iterable), decomposed gate by gate, routed over a bounded
:class:`~repro.circuit.dag.StreamingDAG` window, and emitted as routed OpenQASM 2.0 text
chunks the moment they are placed — the full circuit, its DAG, and the routed result are
never materialised at once.

The routing loop, scoring kernels, and rng discipline are literally shared with the
in-memory path (:meth:`SabreSwapRouter.route_stream_steps` drives the same
``_route_loop`` as :meth:`~SabreSwapRouter.route_steps`), so a window that covers the
whole circuit produces output byte-identical to ``qasm.dumps(transpile(...).circuit)``
at the equivalent configuration (level ``O0``, ``layout_iterations=0``).

Streaming constraints (checked up front, with guidance in the error):

* ``level`` must be ``"O0"`` — the higher presets' optimization passes are whole-DAG
  fixed-point loops and cannot run over a window;
* ``layout_iterations`` must be ``0`` — reverse-traversal layout refinement routes the
  entire circuit forward and backward before compilation proper starts;
* ``best_of`` / ``schedule`` are unsupported, and the routing method must provide a
  router class (all built-ins except ``"none"`` do).

``noise_aware`` and ``route_cost="ns"`` work exactly as in :func:`transpile`: they only
change the distance matrix the router scores against.

One documented divergence: routing methods whose plan carries whole-DAG post-routing
passes (NASSC's ``CommuteSingleQubitsThroughSwap``) skip those in streaming mode — the
routing decisions and orientation-labelled SWAP lowering are identical, but that final
single-qubit-motion cleanup needs the materialised DAG.  The byte-identity guarantee
above therefore applies to plans without such passes (``sabre``); for ``nassc`` the
streamed output matches the routed-and-lowered circuit before that cleanup.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Union

import numpy as np

from ..circuit.circuit import Instruction, QuantumCircuit
from ..circuit.dag import StreamingDAG
from ..circuit.qasm import QASMStreamReader, header_lines, instruction_line
from ..exceptions import TranspilerError
from ..hardware.coupling import CouplingMap
from ..hardware.target import Target
from ..obs.counters import COUNTERS
from ..transpiler.passes.basis import _DIRECTIVES, _ROUTABLE_1Q, _ROUTABLE_2Q, Decompose
from ..transpiler.passes.layout import Layout
from ..transpiler.passes.swap_lowering import lower_swap, swap_orientation
from ..transpiler.registry import get_routing
from .nassc import NASSCConfig
from .options import TranspileOptions
from .pipeline import _resolve_options, _resolve_target

#: Default live-window size (gates) of the streaming frontier.
DEFAULT_WINDOW_GATES = 4096

#: Default emission granularity: a chunk is yielded once it holds this many lines.
DEFAULT_CHUNK_GATES = 1024


class _StreamMetrics:
    """Incremental mirror of the whole-circuit metrics (`size`/`cx_count`/`depth`).

    Replays :meth:`QuantumCircuit.depth`'s wire-level critical-path recurrence op by op,
    so the summary reports the same numbers a materialised routed circuit would — the
    streaming property tests pin this against a parsed re-load of the emitted QASM.
    """

    def __init__(self, num_qubits: int, num_clbits: int) -> None:
        self._qubit_level = [0] * num_qubits
        self._clbit_level = [0] * num_clbits
        self.depth = 0
        self.gate_count = 0
        self.cx_count = 0

    def record(self, name: str, qubits, clbits) -> None:
        start = 0
        for q in qubits:
            if self._qubit_level[q] > start:
                start = self._qubit_level[q]
        for c in clbits:
            if self._clbit_level[c] > start:
                start = self._clbit_level[c]
        if name != "barrier":
            start += 1
            self.gate_count += 1
            if name == "cx":
                self.cx_count += 1
        for q in qubits:
            self._qubit_level[q] = start
        for c in clbits:
            self._clbit_level[c] = start
        if start > self.depth:
            self.depth = start


def _check_routable(inst: Instruction) -> None:
    """Per-gate equivalent of the :class:`CheckRoutable` whole-DAG sweep."""
    name = inst.name
    if name in _DIRECTIVES:
        return
    if len(inst.qubits) == 1 and (name in _ROUTABLE_1Q or name == "unitary"):
        return
    if len(inst.qubits) == 2 and name in _ROUTABLE_2Q:
        return
    raise TranspilerError(
        f"gate '{name}' on {inst.qubits} is not routable; run Decompose first"
    )


def _prepared_instructions(
    instructions: Iterable[Instruction], num_qubits: int
) -> Iterator[Instruction]:
    """Lazily decompose and validate the source stream (the O0 ``init`` stage, per gate).

    ``Decompose`` is a pure per-instruction map, so applying it gate by gate yields
    exactly the instruction sequence the whole-DAG pass emits.
    """
    decompose = Decompose(keep_swaps=True)
    for inst in instructions:
        for q in inst.qubits:
            if not 0 <= q < num_qubits:
                raise TranspilerError(
                    f"qubit {q} out of range for a {num_qubits}-qubit source"
                )
        for lowered in decompose._decompose_instruction(inst):
            _check_routable(lowered)
            yield lowered


def _resolve_source(source, num_qubits, num_clbits):
    """Normalise the source argument to ``(instruction_iterable, num_qubits, num_clbits)``."""
    if isinstance(source, QuantumCircuit):
        return iter(source.data), source.num_qubits, source.num_clbits
    if isinstance(source, QASMStreamReader):
        # Accessing the register sizes parses the stream prefix up to the first operation.
        return source.instructions(), source.num_qubits, source.num_clbits
    if num_qubits is None:
        raise TranspilerError(
            "streaming from a bare instruction iterable requires num_qubits= "
            "(pass a QuantumCircuit or QASMStreamReader to infer it)"
        )
    return iter(source), int(num_qubits), int(num_clbits or 0)


def _validate_stream_options(options: TranspileOptions, plan) -> None:
    if options.level != "O0":
        raise TranspilerError(
            f"streaming transpilation supports level='O0' only (got {options.level!r}): "
            "the higher presets run whole-DAG optimization loops; "
            "use transpile() for in-memory compilation"
        )
    if options.layout_iterations != 0:
        raise TranspilerError(
            "streaming transpilation requires layout_iterations=0: reverse-traversal "
            "layout refinement routes the whole circuit before compilation starts"
        )
    if options.effective_best_of > 1:
        raise TranspilerError("best_of ensemble routing cannot run over a stream")
    if options.schedule is not None:
        raise TranspilerError("schedule lowering cannot run over a stream")
    if plan is None or plan.routing_router_cls is None:
        raise TranspilerError(
            f"routing method {options.routing!r} does not support streaming "
            "(no per-run router class)"
        )


def transpile_stream(
    source: Union[QuantumCircuit, QASMStreamReader, Iterable[Instruction]],
    target: Union[Target, CouplingMap, None] = None,
    options: Optional[TranspileOptions] = None,
    *,
    window_gates: int = DEFAULT_WINDOW_GATES,
    chunk_gates: int = DEFAULT_CHUNK_GATES,
    num_qubits: Optional[int] = None,
    num_clbits: Optional[int] = None,
    routing: Optional[str] = None,
    seed: Optional[int] = None,
    nassc_config: Optional[NASSCConfig] = None,
    noise_aware: Optional[bool] = None,
    extended_set_size: Optional[int] = None,
    extended_set_weight: Optional[float] = None,
    check: Optional[bool] = None,
    route_cost: Optional[str] = None,
):
    """Route an instruction stream onto a device, yielding routed QASM text chunks.

    Generator: yields ``str`` chunks of the routed OpenQASM 2.0 output (the first chunk
    carries the header) and *returns* a summary dict as its ``StopIteration`` value —
    capture it with :func:`stream_to` or a manual drive loop::

        chunks = transpile_stream(reader, target, window_gates=4096)
        summary = None
        while True:
            try:
                chunk = next(chunks)
            except StopIteration as stop:
                summary = stop.value
                break
            sink.write(chunk)

    ``options`` defaults to the streamable configuration
    ``TranspileOptions(level="O0", layout_iterations=0)``; explicitly provided options
    must satisfy the streaming constraints (see the module docstring).  Peak memory is
    O(``window_gates`` + device wires) regardless of stream length.
    """
    if window_gates < 1:
        raise TranspilerError(f"window_gates must be >= 1, got {window_gates}")
    if chunk_gates < 1:
        raise TranspilerError(f"chunk_gates must be >= 1, got {chunk_gates}")

    resolved_target = _resolve_target(target, None, None)
    base = options if options is not None else TranspileOptions(level="O0", layout_iterations=0)
    resolved = _resolve_options(
        base,
        {
            "routing": routing,
            "seed": seed,
            "nassc_config": nassc_config,
            "noise_aware": noise_aware,
            "extended_set_size": extended_set_size,
            "extended_set_weight": extended_set_weight,
            "check": check,
            "route_cost": route_cost,
        },
    )

    method = get_routing(resolved.routing)
    if method.requires_coupling and not resolved_target.has_coupling:
        raise TranspilerError(
            f"routing method {method.name!r} requires a target with a coupling map"
        )
    if resolved.noise_aware and not resolved_target.has_calibration:
        raise TranspilerError("noise_aware routing requires a target with calibration data")
    if resolved.route_cost == "ns" and not resolved_target.has_calibration:
        raise TranspilerError(
            "route_cost='ns' requires a target with calibration data "
            "(gate durations set the SWAP costs)"
        )

    distance_matrix: Optional[np.ndarray] = None
    if resolved.route_cost == "ns":
        distance_matrix = resolved_target.duration_distance_matrix()
    elif resolved.noise_aware and resolved_target.has_calibration:
        distance_matrix = resolved_target.noise_distance_matrix()

    plan = method.factory(resolved_target, resolved, distance_matrix=distance_matrix)
    _validate_stream_options(resolved, plan)

    coupling = resolved_target.coupling_map
    instructions, src_qubits, src_clbits = _resolve_source(source, num_qubits, num_clbits)
    if src_qubits > coupling.num_qubits:
        raise TranspilerError(
            f"circuit needs {src_qubits} qubits but the device has {coupling.num_qubits}"
        )

    router = plan.routing_router_cls(
        coupling,
        seed=resolved.seed,
        distance_matrix=distance_matrix,
        **plan.routing_router_kwargs,
    )
    # Same seed layout SabreLayoutSelection starts from; with layout_iterations=0 the
    # in-memory pipeline uses it unrefined, so the two paths start identically.
    layout = Layout.random(src_qubits, coupling.num_qubits, seed=resolved.seed)

    frontier = StreamingDAG(
        _prepared_instructions(instructions, src_qubits),
        src_qubits,
        src_clbits,
        window_gates=window_gates,
    )

    metrics = _StreamMetrics(coupling.num_qubits, src_clbits)
    use_labels = plan.use_swap_labels
    adj = coupling.adjacency_matrix()
    do_check = resolved.check
    buffer: List[str] = list(header_lines(coupling.num_qubits, src_clbits))

    def emit_op(name: str, op) -> None:
        if do_check and len(op.qubits) == 2 and name != "barrier" and op.gate.is_unitary:
            a, b = op.qubits
            if not adj[a, b]:
                raise TranspilerError(
                    f"routed gate {name} on {op.qubits} violates the coupling map"
                )
        buffer.append(instruction_line(op))
        metrics.record(name, op.qubits, op.clbits)

    def emit(position: int, op) -> None:
        if op.name == "swap":
            # Per-gate SWAP lowering (the O0 post_routing stage), honouring the
            # router's optimization-aware orientation labels when the plan asks.
            control = swap_orientation(op.gate.label if use_labels else None, op.qubits)
            for lowered in lower_swap(op.qubits[0], op.qubits[1], control):
                emit_op("cx", lowered)
        else:
            emit_op(op.name, op)

    steps = router.route_stream_steps(frontier, layout, emit=emit)
    reply = None
    result = None
    while True:
        try:
            request = steps.send(reply)
        except StopIteration as stop:
            result = stop.value
            break
        reply = request.evaluate()
        # Scoring points are the natural flush boundaries: the emission buffer only
        # grows between them by the gates executed since the previous score.
        while len(buffer) >= chunk_gates:
            chunk = buffer[:chunk_gates]
            del buffer[:chunk_gates]
            yield "\n".join(chunk) + "\n"

    if buffer:
        yield "\n".join(buffer) + "\n"

    COUNTERS.inc("streaming.transpiles")
    COUNTERS.inc("streaming.gates_emitted", metrics.gate_count)
    return {
        "routing": resolved.routing,
        "level": resolved.level,
        "window_gates": int(window_gates),
        "num_qubits": int(coupling.num_qubits),
        "num_clbits": int(src_clbits),
        "source_gates": int(frontier.admitted),
        "emitted_gates": int(metrics.gate_count),
        "cx_count": int(metrics.cx_count),
        "depth": int(metrics.depth),
        "num_swaps": int(result.num_swaps),
        "initial_layout": result.initial_layout.to_pairs(),
        "final_layout": result.final_layout.to_pairs(),
    }


def stream_to(chunks, sink) -> Dict:
    """Drive a :func:`transpile_stream` generator into ``sink.write``; returns the summary.

    ``sink`` is anything with a ``write(str)`` method (file, socket wrapper, response
    body).  Chunks are written as they are produced, so the sink sees routed prefixes
    while the tail of the stream is still compiling.
    """
    while True:
        try:
            chunk = next(chunks)
        except StopIteration as stop:
            return stop.value
        sink.write(chunk)

"""Single-qubit gate movement through SWAP gates (part of NASSC's optimization-aware SWAP
decomposition, paper Sec. IV-E).

A single-qubit gate ``U`` on qubit ``a`` immediately followed by ``swap(a, b)`` is equivalent
to ``swap(a, b)`` followed by ``U`` on qubit ``b``.  Moving such gates after the SWAP removes
them from between a preceding CNOT and the SWAP's first CNOT, which is what lets the
commutative-cancellation pass fire (Fig. 7 of the paper).

Gates moved through one SWAP land on the swapped wire and may be moved again by a later SWAP
(qubits travel along SWAP chains during routing), so the pass tracks wire adjacency on the
rewritten circuit, not on the original one.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..circuit.circuit import Instruction
from ..circuit.dag import DAGCircuit
from ..transpiler.passmanager import PropertySet, TransformationPass


class CommuteSingleQubitsThroughSwap(TransformationPass):
    """Move single-qubit gates that immediately precede a SWAP to after it (on the swapped wire)."""

    def run(self, dag: DAGCircuit, property_set: PropertySet) -> DAGCircuit:
        # Entries are instructions or None (a gate that was relocated); indices are stable.
        output: List[Optional[Instruction]] = []
        # For every wire, indices into ``output`` of the instructions touching it, in order.
        wire: Dict[int, List[int]] = {q: [] for q in range(dag.num_qubits)}

        def append(inst: Instruction) -> int:
            index = len(output)
            output.append(inst)
            for q in inst.qubits:
                wire[q].append(index)
            return index

        for node in dag.op_nodes():
            inst = Instruction(node.gate.copy(), node.qubits, node.clbits)
            if inst.name != "swap":
                append(inst)
                continue
            a, b = inst.qubits
            relocated: List[Instruction] = []
            for source, destination in ((a, b), (b, a)):
                collected: List[Instruction] = []
                history = wire[source]
                while history:
                    prev_index = history[-1]
                    prev = output[prev_index]
                    if (
                        prev is None
                        or len(prev.qubits) != 1
                        or not prev.gate.is_unitary
                        or prev.name == "barrier"
                    ):
                        break
                    collected.append(Instruction(prev.gate.copy(), (destination,)))
                    output[prev_index] = None
                    history.pop()
                # The walk collected gates from latest to earliest; restore circuit order.
                relocated.extend(reversed(collected))
            append(inst)
            for moved in relocated:
                append(moved)

        result = dag.copy_empty_like()
        for inst in output:
            if inst is None:
                continue
            result.add_node(inst.gate, inst.qubits, inst.clbits)
        return result

"""End-to-end compilation pipelines (paper Fig. 2 and Fig. 5).

``transpile`` reproduces the two pipelines compared throughout the evaluation:

* ``routing="sabre"`` — Qiskit+SABRE: decomposition, pre-routing optimization, SABRE layout
  and routing, fixed SWAP decomposition, then the standard post-routing optimizations.
* ``routing="nassc"`` — Qiskit+NASSC: identical except that the routing pass uses the
  optimization-aware cost function and SWAPs are decomposed with optimization-aware
  orientation (plus single-qubit movement through SWAPs).

Both pipelines share every other pass, so differences in the reported metrics isolate the
paper's contribution.  ``routing="none"`` applies only the optimizations (used to compute the
"original circuit optimized by Qiskit" baseline of Tables I-IV).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..circuit.circuit import QuantumCircuit
from ..exceptions import TranspilerError
from ..hardware.calibration import DeviceCalibration
from ..hardware.coupling import CouplingMap
from ..hardware.noise_distance import noise_aware_distance_matrix
from ..transpiler.passmanager import FixedPoint, PassManager, PropertySet
from ..transpiler.passes.basis import CheckRoutable, Decompose
from ..transpiler.passes.check_map import CheckMap
from ..transpiler.passes.commutation import CommutativeCancellation
from ..transpiler.passes.layout import ApplyLayout, Layout
from ..transpiler.passes.optimize_1q import Optimize1qGates, RemoveIdentities
from ..transpiler.passes.sabre import SabreLayoutSelection, SabreRouting, SabreSwapRouter
from ..transpiler.passes.swap_lowering import SwapLowering
from ..transpiler.passes.unitary_synthesis import UnitarySynthesis
from .nassc import NASSCConfig, NASSCRouting, NASSCSwapRouter
from .single_qubit_motion import CommuteSingleQubitsThroughSwap

ROUTING_METHODS = ("none", "sabre", "nassc")

#: Version of the transpiler pipeline's structure/semantics.  Bumped whenever a refactor
#: could change compiled output or the meaning of recorded metrics; the service layer folds
#: it into job fingerprints so refactored pipelines never serve stale cached results.
PIPELINE_VERSION = 2

#: Iteration cap of the post-routing optimization loop.  Two matches the historical
#: pipeline (which hard-coded the UnitarySynthesis/CommutativeCancellation pair twice), so
#: compiled output stays bit-identical to it; unlike the historical pipeline the loop
#: exits after a single iteration when that iteration already reached the fixed point.
#: Iterations beyond two keep rewriting equivalent 1q expressions without reducing CNOTs,
#: so a larger cap buys no quality — only wall time.
MAX_OPT_LOOP_ITERATIONS = 2


@dataclass
class TranspileResult:
    """Compiled circuit plus the metrics the paper reports."""

    circuit: QuantumCircuit
    routing: str
    coupling_map: Optional[CouplingMap]
    initial_layout: Optional[Layout]
    final_layout: Optional[Layout]
    num_swaps: int
    transpile_time: float
    #: Per-pass-name aggregate wall time (instances of the same pass are summed).
    pass_timings: Dict[str, float] = field(default_factory=dict)
    #: Ordered per-invocation timing entries ``(pass name, elapsed seconds)`` — repeated
    #: instances (e.g. fixed-point loop iterations) stay distinguishable here.
    pass_timing_log: List[Tuple[str, float]] = field(default_factory=list)

    @property
    def cx_count(self) -> int:
        return self.circuit.cx_count()

    @property
    def depth(self) -> int:
        return self.circuit.depth()

    def count_ops(self) -> Dict[str, int]:
        return self.circuit.count_ops()

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-safe representation of the result (circuit serialised as OpenQASM 2.0).

        Only gates in the standard named set survive the round trip, which every circuit
        produced by :func:`transpile` satisfies.  Used by the result cache of
        :mod:`repro.service` and by :mod:`repro.evaluation.reporting` JSON exports.
        """
        from ..circuit import qasm

        return {
            "qasm": qasm.dumps(self.circuit),
            "name": self.circuit.name,
            "routing": self.routing,
            "coupling_map": self.coupling_map.to_dict() if self.coupling_map else None,
            "initial_layout": self.initial_layout.to_pairs() if self.initial_layout else None,
            "final_layout": self.final_layout.to_pairs() if self.final_layout else None,
            "num_swaps": int(self.num_swaps),
            "transpile_time": float(self.transpile_time),
            "pass_timings": {name: float(t) for name, t in self.pass_timings.items()},
            "pass_timing_log": [[name, float(t)] for name, t in self.pass_timing_log],
            "metrics": {
                "cx_count": self.cx_count,
                "depth": self.depth,
                "count_ops": self.count_ops(),
            },
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "TranspileResult":
        """Rebuild a result from :meth:`to_dict` output."""
        from ..circuit import qasm

        circuit = qasm.loads(data["qasm"])
        circuit.name = data.get("name", circuit.name)
        coupling = data.get("coupling_map")
        initial = data.get("initial_layout")
        final = data.get("final_layout")
        return cls(
            circuit=circuit,
            routing=data["routing"],
            coupling_map=CouplingMap.from_dict(coupling) if coupling else None,
            initial_layout=Layout.from_pairs(initial) if initial else None,
            final_layout=Layout.from_pairs(final) if final else None,
            num_swaps=int(data.get("num_swaps", 0)),
            transpile_time=float(data.get("transpile_time", 0.0)),
            pass_timings=dict(data.get("pass_timings", {})),
            pass_timing_log=[
                (str(name), float(t)) for name, t in data.get("pass_timing_log", [])
            ],
        )


def _pre_routing_passes() -> list:
    """Optimizations applied to the logical circuit before layout/routing (both pipelines)."""
    return [
        Decompose(keep_swaps=True),
        Optimize1qGates(output="u"),
        UnitarySynthesis(),
        CommutativeCancellation(),
        Optimize1qGates(output="u"),
        RemoveIdentities(),
        CheckRoutable(),
    ]


def _post_routing_passes(final_basis: str) -> list:
    """Optimizations applied to the routed physical circuit (both pipelines).

    The re-synthesis/cancellation pair runs as a declared fixed-point loop (keyed on the
    DAG fingerprint) instead of a hard-coded run-twice sequence: iterations repeat only
    while they still change the circuit.
    """
    return [
        FixedPoint(
            [UnitarySynthesis(), CommutativeCancellation()],
            max_iterations=MAX_OPT_LOOP_ITERATIONS,
        ),
        Optimize1qGates(output=final_basis),
        RemoveIdentities(),
    ]


def optimize_logical(circuit: QuantumCircuit, final_basis: str = "zsx") -> QuantumCircuit:
    """Optimize a circuit without any routing (the Tables' "Original Circuit" column)."""
    manager = PassManager(_pre_routing_passes())
    manager.extend([SwapLowering(), *_post_routing_passes(final_basis)])
    return manager.run(circuit)


def transpile(
    circuit: QuantumCircuit,
    coupling_map: Optional[CouplingMap] = None,
    *,
    routing: str = "sabre",
    seed: Optional[int] = None,
    nassc_config: Optional[NASSCConfig] = None,
    calibration: Optional[DeviceCalibration] = None,
    noise_aware: bool = False,
    extended_set_size: int = 20,
    extended_set_weight: float = 0.5,
    layout_iterations: int = 2,
    final_basis: str = "zsx",
    check: bool = True,
) -> TranspileResult:
    """Compile a logical circuit for a device coupling map.

    Parameters mirror the paper's experimental configuration (Sec. V): extended layer size 20
    with weight 0.5, SABRE-style reverse-traversal layout, and all NASSC optimizations
    enabled.  ``noise_aware=True`` switches the routing distance matrix to the HA matrix
    built from ``calibration`` (the SABRE+HA / NASSC+HA variants of Fig. 11).
    """
    if routing not in ROUTING_METHODS:
        raise TranspilerError(f"unknown routing method {routing!r}; expected one of {ROUTING_METHODS}")
    if routing != "none" and coupling_map is None:
        raise TranspilerError("a coupling map is required unless routing='none'")
    if noise_aware and calibration is None:
        raise TranspilerError("noise_aware=True requires calibration data")

    start = time.perf_counter()
    manager = PassManager(_pre_routing_passes())

    distance_matrix: Optional[np.ndarray] = None
    if noise_aware and calibration is not None:
        distance_matrix = noise_aware_distance_matrix(calibration)

    if routing == "none":
        manager.extend([SwapLowering(), *_post_routing_passes(final_basis)])
    else:
        if routing == "sabre":
            router_cls = SabreSwapRouter
            router_kwargs = {"distance_matrix": distance_matrix}
            routing_pass = SabreRouting(
                coupling_map,
                extended_set_size=extended_set_size,
                extended_set_weight=extended_set_weight,
                seed=seed,
                distance_matrix=distance_matrix,
            )
        else:
            router_cls = NASSCSwapRouter
            router_kwargs = {"distance_matrix": distance_matrix, "config": nassc_config}
            routing_pass = NASSCRouting(
                coupling_map,
                config=nassc_config,
                extended_set_size=extended_set_size,
                extended_set_weight=extended_set_weight,
                seed=seed,
                distance_matrix=distance_matrix,
            )
        manager.append(
            SabreLayoutSelection(
                coupling_map,
                iterations=layout_iterations,
                seed=seed,
                router_cls=router_cls,
                router_kwargs=router_kwargs,
            )
        )
        manager.append(routing_pass)
        if routing == "nassc":
            manager.append(CommuteSingleQubitsThroughSwap())
        manager.append(SwapLowering(use_labels=(routing == "nassc")))
        manager.extend(_post_routing_passes(final_basis))
        if check:
            manager.append(CheckMap(coupling_map))

    compiled = manager.run(circuit)
    elapsed = time.perf_counter() - start

    props: PropertySet = manager.property_set
    return TranspileResult(
        circuit=compiled,
        routing=routing,
        coupling_map=coupling_map,
        initial_layout=props.get("initial_layout", props.get("layout")),
        final_layout=props.get("final_layout"),
        num_swaps=props.get("num_swaps", 0),
        transpile_time=elapsed,
        pass_timings=dict(manager.timings),
        pass_timing_log=list(manager.timing_log),
    )


def compare_routings(
    circuit: QuantumCircuit,
    coupling_map: CouplingMap,
    *,
    seed: Optional[int] = None,
    nassc_config: Optional[NASSCConfig] = None,
) -> Dict[str, TranspileResult]:
    """Run both pipelines on one circuit (convenience helper used by examples and tests)."""
    return {
        "sabre": transpile(circuit, coupling_map, routing="sabre", seed=seed),
        "nassc": transpile(
            circuit, coupling_map, routing="nassc", seed=seed, nassc_config=nassc_config
        ),
    }

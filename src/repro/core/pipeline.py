"""Target-centric compilation entry points (paper Fig. 2 and Fig. 5).

``transpile(circuit, target, options)`` is the public compile API: the
:class:`~repro.hardware.target.Target` describes the device (coupling map, calibration,
output basis), the :class:`~repro.core.options.TranspileOptions` select the routing
method (by registry name) and the preset optimization level ``O0``-``O3``, and the
staged :class:`~repro.transpiler.builder.PipelineBuilder` composes the pass manager from
declared stages.  At level ``O1`` with ``routing="sabre"``/``"nassc"`` the composed
pipeline is exactly the paper's evaluation pipeline, so differences in the reported
metrics still isolate the paper's contribution.

The historical flat-kwarg signature ``transpile(circuit, coupling_map, routing=...,
calibration=..., ...)`` keeps working as a thin deprecation shim that folds the kwargs
into a target and options before entering the same engine.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..circuit.circuit import QuantumCircuit
from ..exceptions import TranspilerError
from ..schedule.ir import Schedule
from ..hardware.calibration import DeviceCalibration
from ..hardware.coupling import CouplingMap
from ..hardware.target import Target
from ..obs.tracer import active_tracer, env_trace_path
from ..transpiler.builder import LEVEL_FIXED_POINT_ITERATIONS, PipelineBuilder
from ..transpiler.passmanager import PropertySet
from ..transpiler.passes.layout import Layout
from ..transpiler.registry import available_routings
from .nassc import NASSCConfig
from .options import TranspileOptions

#: Registered routing-method names at import time (built-ins only: env plugin modules
#: are deliberately not loaded here, since they import ``repro`` back while it is still
#: initialising).  Deprecated snapshot kept for backward compatibility — consult
#: :func:`repro.transpiler.registry.available_routings` for the live list.
ROUTING_METHODS = tuple(available_routings(load_plugins=False))

#: Version of the transpiler pipeline's structure/semantics.  Bumped whenever a refactor
#: could change compiled output or the meaning of recorded metrics; the service layer folds
#: it into job fingerprints so refactored pipelines never serve stale cached results.
PIPELINE_VERSION = 5

#: Iteration cap of the ``O1`` post-routing optimization loop (kept as a module constant
#: for backward compatibility; per-level caps live in
#: :data:`repro.transpiler.builder.LEVEL_FIXED_POINT_ITERATIONS`).
MAX_OPT_LOOP_ITERATIONS = LEVEL_FIXED_POINT_ITERATIONS["O1"]


@dataclass
class TranspileResult:
    """Compiled circuit plus the metrics the paper reports."""

    circuit: QuantumCircuit
    routing: str
    coupling_map: Optional[CouplingMap]
    initial_layout: Optional[Layout]
    final_layout: Optional[Layout]
    num_swaps: int
    transpile_time: float
    #: Per-pass-name aggregate wall time (instances of the same pass are summed).
    pass_timings: Dict[str, float] = field(default_factory=dict)
    #: Ordered per-invocation timing entries ``(pass name, elapsed seconds)`` — repeated
    #: instances (e.g. fixed-point loop iterations) stay distinguishable here.
    pass_timing_log: List[Tuple[str, float]] = field(default_factory=list)
    #: Preset optimization level the circuit was compiled at.
    level: str = "O1"
    #: Serialised span tree of this call when tracing was enabled (see
    #: :mod:`repro.obs`); empty when tracing was off.  For remote jobs the client
    #: merges server/worker spans in here, yielding the full cross-process tree.
    trace: List[Dict] = field(default_factory=list)
    #: Number of ensemble routing trials the result was selected from (1 = plain run).
    best_of: int = 1
    #: Ensemble summary (winner, per-trial outcomes) when ``best_of > 1``, else None.
    ensemble: Optional[Dict] = None
    #: Timed schedule of the compiled circuit when ``options.schedule`` was set
    #: (a :class:`repro.schedule.Schedule`), else None.
    schedule: Optional[Schedule] = None

    @property
    def cx_count(self) -> int:
        return self.circuit.cx_count()

    @property
    def depth(self) -> int:
        return self.circuit.depth()

    def count_ops(self) -> Dict[str, int]:
        return self.circuit.count_ops()

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-safe representation of the result (circuit serialised as OpenQASM 2.0).

        Only gates in the standard named set survive the round trip, which every circuit
        produced by :func:`transpile` satisfies.  Used by the result cache of
        :mod:`repro.service` and by :mod:`repro.evaluation.reporting` JSON exports.
        """
        from ..circuit import qasm

        out = {
            "qasm": qasm.dumps(self.circuit),
            "name": self.circuit.name,
            "routing": self.routing,
            "level": self.level,
            "coupling_map": self.coupling_map.to_dict() if self.coupling_map else None,
            "initial_layout": self.initial_layout.to_pairs() if self.initial_layout else None,
            "final_layout": self.final_layout.to_pairs() if self.final_layout else None,
            "num_swaps": int(self.num_swaps),
            "transpile_time": float(self.transpile_time),
            "pass_timings": {name: float(t) for name, t in self.pass_timings.items()},
            "pass_timing_log": [[name, float(t)] for name, t in self.pass_timing_log],
            "metrics": {
                "cx_count": self.cx_count,
                "depth": self.depth,
                "count_ops": self.count_ops(),
            },
        }
        if self.trace:
            out["trace"] = list(self.trace)
        if self.best_of != 1:
            out["best_of"] = int(self.best_of)
        if self.ensemble is not None:
            out["ensemble"] = dict(self.ensemble)
        if self.schedule is not None:
            out["schedule"] = self.schedule.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Dict) -> "TranspileResult":
        """Rebuild a result from :meth:`to_dict` output."""
        from ..circuit import qasm

        circuit = qasm.loads(data["qasm"])
        circuit.name = data.get("name", circuit.name)
        coupling = data.get("coupling_map")
        initial = data.get("initial_layout")
        final = data.get("final_layout")
        return cls(
            circuit=circuit,
            routing=data["routing"],
            level=data.get("level", "O1"),
            coupling_map=CouplingMap.from_dict(coupling) if coupling else None,
            initial_layout=Layout.from_pairs(initial) if initial else None,
            final_layout=Layout.from_pairs(final) if final else None,
            num_swaps=int(data.get("num_swaps", 0)),
            transpile_time=float(data.get("transpile_time", 0.0)),
            pass_timings=dict(data.get("pass_timings", {})),
            pass_timing_log=[
                (str(name), float(t)) for name, t in data.get("pass_timing_log", [])
            ],
            trace=list(data.get("trace", [])),
            best_of=int(data.get("best_of", 1)),
            ensemble=data.get("ensemble"),
            schedule=Schedule.from_dict(data["schedule"]) if data.get("schedule") else None,
        )


# ---------------------------------------------------------------------------
# Target/options resolution (the legacy-kwarg deprecation shim lives here)
# ---------------------------------------------------------------------------

def _resolve_target(
    target: Union[Target, CouplingMap, None],
    calibration: Optional[DeviceCalibration],
    final_basis: Optional[str],
) -> Target:
    """Normalise the device argument to a :class:`Target`, warning on the legacy forms."""
    if isinstance(target, Target):
        if calibration is not None or final_basis is not None:
            raise TranspilerError(
                "pass device properties (calibration, final_basis) on the Target, "
                "not as transpile() kwargs"
            )
        return target
    if target is not None and not isinstance(target, CouplingMap):
        raise TranspilerError(
            f"expected a Target or CouplingMap, got {type(target).__name__}"
        )
    if isinstance(target, CouplingMap) or calibration is not None or final_basis is not None:
        warnings.warn(
            "passing a bare coupling map / device kwargs to transpile() is deprecated; "
            "build a repro.Target instead",
            DeprecationWarning,
            stacklevel=3,
        )
    return Target(
        coupling_map=target,
        calibration=calibration,
        final_basis=final_basis if final_basis is not None else "zsx",
    )


def _resolve_options(options: Optional[TranspileOptions], overrides: Dict) -> TranspileOptions:
    """Merge per-call kwargs over the options object (or the defaults)."""
    provided = {key: value for key, value in overrides.items() if value is not None}
    base = options if options is not None else TranspileOptions()
    if not isinstance(base, TranspileOptions):
        raise TranspilerError(f"options must be a TranspileOptions, got {type(base).__name__}")
    return base.replace(**provided) if provided else base


def transpile(
    circuit: QuantumCircuit,
    target: Union[Target, CouplingMap, None] = None,
    options: Optional[TranspileOptions] = None,
    *,
    routing: Optional[str] = None,
    level: Optional[Union[str, int]] = None,
    seed: Optional[int] = None,
    nassc_config: Optional[NASSCConfig] = None,
    calibration: Optional[DeviceCalibration] = None,
    noise_aware: Optional[bool] = None,
    extended_set_size: Optional[int] = None,
    extended_set_weight: Optional[float] = None,
    layout_iterations: Optional[int] = None,
    final_basis: Optional[str] = None,
    check: Optional[bool] = None,
    coupling_map: Optional[CouplingMap] = None,
    best_of: Optional[int] = None,
    schedule: Optional[str] = None,
    route_cost: Optional[str] = None,
    _trial_subset: Optional[Sequence[int]] = None,
) -> TranspileResult:
    """Compile a logical circuit for a device target.

    The canonical call shape is ``transpile(circuit, target, options)``; individual
    option fields may also be given as keyword overrides for one-off calls
    (``transpile(circuit, target, level="O2")``).  Defaults mirror the paper's
    experimental configuration (Sec. V): extended layer size 20 with weight 0.5,
    SABRE-style reverse-traversal layout, all NASSC optimizations enabled, level ``O1``.

    Passing a bare :class:`CouplingMap` — positionally or via the historical
    ``coupling_map=`` keyword — plus ``calibration=``/``final_basis=`` is the deprecated
    legacy form; it still works but emits a :class:`DeprecationWarning`.
    """
    if coupling_map is not None:
        if target is not None:
            raise TranspilerError("pass either target or the legacy coupling_map, not both")
        target = coupling_map
    resolved_target = _resolve_target(target, calibration, final_basis)
    resolved_options = _resolve_options(
        options,
        {
            "routing": routing,
            "level": level,
            "seed": seed,
            "nassc_config": nassc_config,
            "noise_aware": noise_aware,
            "extended_set_size": extended_set_size,
            "extended_set_weight": extended_set_weight,
            "layout_iterations": layout_iterations,
            "check": check,
            "best_of": best_of,
            "schedule": schedule,
            "route_cost": route_cost,
        },
    )

    tracer = active_tracer()

    start = time.perf_counter()
    builder = PipelineBuilder(resolved_target, resolved_options, trial_subset=_trial_subset)
    manager = builder.build()
    if tracer is None:
        compiled = manager.run(circuit)
    else:
        since = len(tracer.finished)
        with tracer.span(
            "transpile",
            circuit=circuit.name,
            qubits=circuit.num_qubits,
            routing=resolved_options.routing,
            level=resolved_options.level,
            seed=resolved_options.seed,
        ) as root:
            compiled = manager.run(circuit)
            root.set("gates", len(compiled.data))
            root.set("depth", compiled.depth())
            root.set("num_swaps", manager.property_set.get("num_swaps", 0))
    elapsed = time.perf_counter() - start

    props: PropertySet = manager.property_set
    result = TranspileResult(
        circuit=compiled,
        routing=resolved_options.routing,
        level=resolved_options.level,
        coupling_map=resolved_target.coupling_map,
        initial_layout=props.get("initial_layout", props.get("layout")),
        final_layout=props.get("final_layout"),
        num_swaps=props.get("num_swaps", 0),
        transpile_time=elapsed,
        pass_timings=dict(manager.timings),
        pass_timing_log=list(manager.timing_log),
        best_of=builder.ensemble_trials,
        ensemble=props.get("ensemble"),
        schedule=props.get("schedule"),
    )
    if tracer is not None:
        result.trace = tracer.span_dicts(since=since)
        trace_path = env_trace_path()
        if trace_path:
            from ..obs.counters import COUNTERS
            from ..obs.export import write_chrome_trace

            write_chrome_trace(trace_path, tracer.span_dicts(), COUNTERS.snapshot())
    return result


def optimize_logical(circuit: QuantumCircuit, final_basis: str = "zsx") -> QuantumCircuit:
    """Optimize a circuit without any routing (the Tables' "Original Circuit" column)."""
    target = Target(final_basis=final_basis)
    manager = PipelineBuilder(target, TranspileOptions(routing="none")).build()
    return manager.run(circuit)


def compare_routings(
    circuit: QuantumCircuit,
    target: Union[Target, CouplingMap],
    *,
    methods: Sequence[str] = ("sabre", "nassc"),
    seed: Optional[int] = None,
    nassc_config: Optional[NASSCConfig] = None,
    calibration: Optional[DeviceCalibration] = None,
    noise_aware: Optional[bool] = None,
    level: Optional[Union[str, int]] = None,
    options: Optional[TranspileOptions] = None,
) -> Dict[str, TranspileResult]:
    """Run several routing methods on one circuit and return results keyed by method.

    Every option — including ``calibration`` and ``noise_aware``, which earlier versions
    silently dropped — is forwarded to each method, so Fig.-11 style noise-aware
    comparisons work directly::

        compare_routings(circuit, Target(coupling, calibration=calib), noise_aware=True)

    As with :func:`transpile`, keyword arguments override the corresponding fields of an
    ``options`` object when both are given.
    """
    if isinstance(target, CouplingMap):
        target = Target(coupling_map=target, calibration=calibration)
    elif calibration is not None:
        raise TranspilerError("pass calibration on the Target, not as a kwarg")
    base = _resolve_options(
        options,
        {"seed": seed, "nassc_config": nassc_config, "noise_aware": noise_aware, "level": level},
    )
    return {
        method: transpile(circuit, target, base.replace(routing=method))
        for method in methods
    }

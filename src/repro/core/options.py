"""Compilation options: the :class:`TranspileOptions` frozen dataclass.

``transpile()`` historically took a flat kwarg list (``routing=``, ``seed=``,
``extended_set_size=``, ...).  ``TranspileOptions`` replaces that explosion with one
immutable value object that

* selects the preset optimization level (``O0``-``O3``) and the routing method (by
  registry name, so third-party routers plug in without touching this module),
* carries every knob that influences compiled output, and
* serialises canonically — its :meth:`content_dict` is the fingerprint input of the
  batch service's content-addressed result cache.

Device-side configuration (coupling map, calibration, output basis) lives on the
:class:`~repro.hardware.target.Target`, not here: options say *how* to compile, the
target says *for what*.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from ..exceptions import TranspilerError
from .nassc import NASSCConfig

#: Preset optimization levels, lowest to highest effort.
OPTIMIZATION_LEVELS: Tuple[str, ...] = ("O0", "O1", "O2", "O3")

LEVEL_DESCRIPTIONS: Dict[str, str] = {
    "O0": "decompose and route only — no optimization passes",
    "O1": "the paper's Fig. 2 pipeline (pre-routing cleanup + post-routing re-synthesis loop)",
    "O2": "O1 with a deeper post-routing fixed-point optimization loop",
    "O3": "O2 plus noise-aware layout/routing whenever the target carries calibration data",
}


def normalize_level(level: Union[str, int]) -> str:
    """Canonicalise a level spelling (``1``, ``"1"``, ``"o1"`` → ``"O1"``)."""
    if isinstance(level, int):
        candidate = f"O{level}"
    else:
        text = str(level).strip().upper()
        candidate = text if text.startswith("O") else f"O{text}"
    if candidate not in OPTIMIZATION_LEVELS:
        raise TranspilerError(
            f"unknown optimization level {level!r}; expected one of {OPTIMIZATION_LEVELS}"
        )
    return candidate


@dataclass(frozen=True)
class TranspileOptions:
    """How to compile: routing method, preset level, seed and heuristic knobs.

    All fields are immutable; derive variants with :meth:`replace`.  ``routing`` names a
    method in :mod:`repro.transpiler.registry`; it is resolved when a pipeline is built,
    so options may be created before a third-party method is registered.
    """

    routing: str = "sabre"
    level: str = "O1"
    seed: Optional[int] = None
    nassc_config: Optional[NASSCConfig] = None
    noise_aware: bool = False
    extended_set_size: int = 20
    extended_set_weight: float = 0.5
    layout_iterations: int = 2
    check: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "level", normalize_level(self.level))
        if self.nassc_config is not None and not isinstance(self.nassc_config, NASSCConfig):
            object.__setattr__(self, "nassc_config", NASSCConfig(*self.nassc_config))

    def replace(self, **changes) -> "TranspileOptions":
        """A copy with the given fields replaced (options are immutable)."""
        return dataclasses.replace(self, **changes)

    # -- serialization and content addressing --------------------------------

    def content_dict(self) -> Dict:
        """Canonical JSON-safe content (the cache-fingerprint contribution of the options)."""
        return {
            "routing": self.routing,
            "level": self.level,
            "seed": self.seed,
            "nassc_config": list(self.nassc_config.as_tuple()) if self.nassc_config else None,
            "noise_aware": bool(self.noise_aware),
            "extended_set_size": int(self.extended_set_size),
            "extended_set_weight": float(self.extended_set_weight),
            "layout_iterations": int(self.layout_iterations),
            "check": bool(self.check),
        }

    def to_dict(self) -> Dict:
        """JSON-safe representation; round-trips through :meth:`from_dict`."""
        return self.content_dict()

    @classmethod
    def from_dict(cls, data: Dict) -> "TranspileOptions":
        nassc = data.get("nassc_config")
        return cls(
            routing=data.get("routing", "sabre"),
            level=data.get("level", "O1"),
            seed=data.get("seed"),
            nassc_config=NASSCConfig(*nassc) if nassc else None,
            noise_aware=data.get("noise_aware", False),
            extended_set_size=data.get("extended_set_size", 20),
            extended_set_weight=data.get("extended_set_weight", 0.5),
            layout_iterations=data.get("layout_iterations", 2),
            check=data.get("check", True),
        )

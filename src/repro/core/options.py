"""Compilation options: the :class:`TranspileOptions` frozen dataclass.

``transpile()`` historically took a flat kwarg list (``routing=``, ``seed=``,
``extended_set_size=``, ...).  ``TranspileOptions`` replaces that explosion with one
immutable value object that

* selects the preset optimization level (``O0``-``O3``) and the routing method (by
  registry name, so third-party routers plug in without touching this module),
* carries every knob that influences compiled output, and
* serialises canonically — its :meth:`content_dict` is the fingerprint input of the
  batch service's content-addressed result cache.

Device-side configuration (coupling map, calibration, output basis) lives on the
:class:`~repro.hardware.target.Target`, not here: options say *how* to compile, the
target says *for what*.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from ..exceptions import ScheduleError, TranspilerError
from ..schedule.modes import normalize_schedule_mode
from .nassc import NASSCConfig

#: Preset optimization levels, lowest to highest effort.
OPTIMIZATION_LEVELS: Tuple[str, ...] = ("O0", "O1", "O2", "O3")

LEVEL_DESCRIPTIONS: Dict[str, str] = {
    "O0": "decompose and route only — no optimization passes",
    "O1": "the paper's Fig. 2 pipeline (pre-routing cleanup + post-routing re-synthesis loop)",
    "O2": "O1 with a deeper post-routing fixed-point optimization loop",
    "O3": "O2 plus noise-aware layout/routing whenever the target carries calibration data",
}

#: Trials ``O3`` runs by default when ``best_of`` is left unset (the highest preset
#: buys the best circuit the seed space offers, amortized by the batched kernels).
O3_DEFAULT_BEST_OF = 4

#: Supported routing cost models: unit hop count, or nanoseconds of inserted SWAP time.
ROUTE_COSTS: Tuple[str, ...] = ("hops", "ns")


def normalize_level(level: Union[str, int]) -> str:
    """Canonicalise a level spelling (``1``, ``"1"``, ``"o1"`` → ``"O1"``)."""
    if isinstance(level, int):
        candidate = f"O{level}"
    else:
        text = str(level).strip().upper()
        candidate = text if text.startswith("O") else f"O{text}"
    if candidate not in OPTIMIZATION_LEVELS:
        raise TranspilerError(
            f"unknown optimization level {level!r}; expected one of {OPTIMIZATION_LEVELS}"
        )
    return candidate


@dataclass(frozen=True)
class TranspileOptions:
    """How to compile: routing method, preset level, seed and heuristic knobs.

    All fields are immutable; derive variants with :meth:`replace`.  ``routing`` names a
    method in :mod:`repro.transpiler.registry`; it is resolved when a pipeline is built,
    so options may be created before a third-party method is registered.
    """

    routing: str = "sabre"
    level: str = "O1"
    seed: Optional[int] = None
    nassc_config: Optional[NASSCConfig] = None
    noise_aware: bool = False
    extended_set_size: int = 20
    extended_set_weight: float = 0.5
    layout_iterations: int = 2
    check: bool = True
    #: Route this many independent seeds and keep the best circuit.  ``None`` means
    #: "preset default": 1 everywhere except ``O3``, which runs
    #: :data:`O3_DEFAULT_BEST_OF` trials.  Methods that opt out (``none``) ignore it.
    best_of: Optional[int] = None
    #: Lower the compiled circuit to a timed schedule: ``"asap"``, ``"alap"``, or
    #: ``None`` (default — no schedule stage runs and compiled output is untouched).
    #: Requires a calibrated target.
    schedule: Optional[str] = None
    #: SWAP-candidate cost model for routing: ``"hops"`` (unit cost, the default) or
    #: ``"ns"`` (candidates scored by the nanoseconds of inserted SWAP time on their
    #: specific links; requires a calibrated target).
    route_cost: str = "hops"

    def __post_init__(self) -> None:
        object.__setattr__(self, "level", normalize_level(self.level))
        if self.nassc_config is not None and not isinstance(self.nassc_config, NASSCConfig):
            object.__setattr__(self, "nassc_config", NASSCConfig(*self.nassc_config))
        if self.best_of is not None:
            if not isinstance(self.best_of, int) or isinstance(self.best_of, bool):
                raise TranspilerError(f"best_of must be an integer, got {self.best_of!r}")
            if self.best_of < 1:
                raise TranspilerError(f"best_of must be >= 1, got {self.best_of}")
        if self.schedule is not None:
            try:
                object.__setattr__(self, "schedule", normalize_schedule_mode(self.schedule))
            except ScheduleError as exc:
                raise TranspilerError(str(exc)) from exc
        if self.route_cost not in ROUTE_COSTS:
            raise TranspilerError(
                f"unknown route_cost {self.route_cost!r}; expected one of {ROUTE_COSTS}"
            )
        if self.route_cost == "ns" and self.noise_aware:
            raise TranspilerError(
                "route_cost='ns' and noise_aware=True are mutually exclusive: both "
                "replace the routing distance matrix; pick one cost model"
            )

    @property
    def effective_best_of(self) -> int:
        """The trial count actually run: explicit ``best_of``, else the preset default."""
        if self.best_of is not None:
            return self.best_of
        return O3_DEFAULT_BEST_OF if self.level == "O3" else 1

    def replace(self, **changes) -> "TranspileOptions":
        """A copy with the given fields replaced (options are immutable)."""
        return dataclasses.replace(self, **changes)

    # -- serialization and content addressing --------------------------------

    def content_dict(self) -> Dict:
        """Canonical JSON-safe content (the cache-fingerprint contribution of the options)."""
        return {
            "routing": self.routing,
            "level": self.level,
            "seed": self.seed,
            "nassc_config": list(self.nassc_config.as_tuple()) if self.nassc_config else None,
            "noise_aware": bool(self.noise_aware),
            "extended_set_size": int(self.extended_set_size),
            "extended_set_weight": float(self.extended_set_weight),
            "layout_iterations": int(self.layout_iterations),
            "check": bool(self.check),
            # The *effective* value: explicit best_of and the preset default that
            # resolves to the same trial count must hit the same cache entry.
            "best_of": int(self.effective_best_of),
            "schedule": self.schedule,
            "route_cost": self.route_cost,
        }

    def to_dict(self) -> Dict:
        """JSON-safe representation; round-trips through :meth:`from_dict`.

        Unlike :meth:`content_dict` (which canonicalises ``best_of`` to the effective
        trial count so equal-behaviour options share a cache fingerprint), this keeps
        the raw field so ``from_dict(to_dict(o)) == o`` exactly.
        """
        data = self.content_dict()
        data["best_of"] = self.best_of
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "TranspileOptions":
        nassc = data.get("nassc_config")
        return cls(
            routing=data.get("routing", "sabre"),
            level=data.get("level", "O1"),
            seed=data.get("seed"),
            nassc_config=NASSCConfig(*nassc) if nassc else None,
            noise_aware=data.get("noise_aware", False),
            extended_set_size=data.get("extended_set_size", 20),
            extended_set_weight=data.get("extended_set_weight", 0.5),
            layout_iterations=data.get("layout_iterations", 2),
            check=data.get("check", True),
            best_of=data.get("best_of"),
            schedule=data.get("schedule"),
            route_cost=data.get("route_cost", "hops"),
        )

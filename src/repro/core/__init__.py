"""The paper's contribution: NASSC optimization-aware routing and the compile pipelines."""

from .estimators import OptimizationEstimator, SwapEstimate
from .nassc import NASSCConfig, NASSCRouting, NASSCSwapRouter
from .options import LEVEL_DESCRIPTIONS, OPTIMIZATION_LEVELS, TranspileOptions, normalize_level
from .pipeline import (
    PIPELINE_VERSION,
    ROUTING_METHODS,
    TranspileResult,
    compare_routings,
    optimize_logical,
    transpile,
)
from .single_qubit_motion import CommuteSingleQubitsThroughSwap
from .stream import transpile_stream, stream_to

__all__ = [
    "OptimizationEstimator",
    "SwapEstimate",
    "NASSCConfig",
    "NASSCRouting",
    "NASSCSwapRouter",
    "LEVEL_DESCRIPTIONS",
    "OPTIMIZATION_LEVELS",
    "TranspileOptions",
    "normalize_level",
    "PIPELINE_VERSION",
    "ROUTING_METHODS",
    "TranspileResult",
    "compare_routings",
    "optimize_logical",
    "transpile",
    "transpile_stream",
    "stream_to",
    "CommuteSingleQubitsThroughSwap",
]

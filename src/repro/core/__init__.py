"""The paper's contribution: NASSC optimization-aware routing and the compile pipelines."""

from .estimators import OptimizationEstimator, SwapEstimate
from .nassc import NASSCConfig, NASSCRouting, NASSCSwapRouter
from .pipeline import ROUTING_METHODS, TranspileResult, compare_routings, optimize_logical, transpile
from .single_qubit_motion import CommuteSingleQubitsThroughSwap

__all__ = [
    "OptimizationEstimator",
    "SwapEstimate",
    "NASSCConfig",
    "NASSCRouting",
    "NASSCSwapRouter",
    "ROUTING_METHODS",
    "TranspileResult",
    "compare_routings",
    "optimize_logical",
    "transpile",
    "CommuteSingleQubitsThroughSwap",
]

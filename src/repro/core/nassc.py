"""NASSC: optimization-aware qubit routing (the paper's contribution, Sec. IV).

:class:`NASSCSwapRouter` extends the SABRE router with the optimization-aware cost function
of Eq. 1/2: for every SWAP candidate the estimated CNOT reductions from two-qubit block
re-synthesis (``C2q``) and commutation-based cancellation (``Ccommute1``, ``Ccommute2``) are
subtracted from the nominal 3-CNOT SWAP cost.  Chosen SWAPs are additionally labelled with
the decomposition orientation that lets the subsequent passes realise the cancellation
(optimization-aware SWAP decomposition, Sec. IV-E).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..circuit.dag import DAGCircuit, DAGNode
from ..hardware.coupling import CouplingMap
from ..obs.counters import COUNTERS
from ..transpiler.passes.layout import Layout
from ..transpiler.passes.sabre import SabreSwapRouter
from ..transpiler.passmanager import PropertySet, TransformationPass
from .estimators import OptimizationEstimator, SwapEstimate


@dataclass(frozen=True)
class NASSCConfig:
    """Which of the three optimizations the cost function is aware of (paper Sec. IV-F).

    All three are enabled by default, matching the configuration the paper selects after the
    Figure 9 ablation.
    """

    enable_2q_resynthesis: bool = True
    enable_commutation1: bool = True
    enable_commutation2: bool = True

    @classmethod
    def all_combinations(cls) -> List["NASSCConfig"]:
        """The 8 enable/disable combinations evaluated in Figure 9."""
        combos = []
        for b2q in (False, True):
            for bc1 in (False, True):
                for bc2 in (False, True):
                    combos.append(cls(b2q, bc1, bc2))
        return combos

    def as_tuple(self) -> Tuple[bool, bool, bool]:
        return (self.enable_2q_resynthesis, self.enable_commutation1, self.enable_commutation2)


class NASSCSwapRouter(SabreSwapRouter):
    """Optimization-aware SWAP router (NASSC)."""

    def __init__(
        self,
        coupling_map: CouplingMap,
        *,
        config: Optional[NASSCConfig] = None,
        extended_set_size: int = 20,
        extended_set_weight: float = 0.5,
        decay_delta: float = 0.001,
        seed: Optional[int] = None,
        distance_matrix: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__(
            coupling_map,
            extended_set_size=extended_set_size,
            extended_set_weight=extended_set_weight,
            decay_delta=decay_delta,
            seed=seed,
            distance_matrix=distance_matrix,
        )
        self.config = config or NASSCConfig()
        self._estimator = OptimizationEstimator()
        self._estimates: Dict[Tuple[int, int], SwapEstimate] = {}
        self._out_circuit = None

    # ------------------------------------------------------------------

    def route(self, circuit, initial_layout: Optional[Layout] = None):
        self._estimates = {}
        return super().route(circuit, initial_layout)

    def _execute_ready_gates(self, frontier, layout, out):
        # Keep a handle on the routed output so the estimators can inspect the resolved layer.
        self._out_circuit = out
        return super()._execute_ready_gates(frontier, layout, out)

    # ------------------------------------------------------------------
    # Optimization-aware cost function (Eq. 2)
    # ------------------------------------------------------------------

    def _estimate_for(self, swap: Tuple[int, int]) -> SwapEstimate:
        estimate = self._estimates.get(swap)
        if estimate is None:
            COUNTERS.inc("routing.nassc.estimates")
            estimate = self._estimator.estimate(
                self._out_circuit,
                self._wire_history,
                swap[0],
                swap[1],
                enable_2q=self.config.enable_2q_resynthesis,
                enable_commute1=self.config.enable_commutation1,
                enable_commute2=self.config.enable_commutation2,
            )
            self._estimates[swap] = estimate
        return estimate

    def _score_candidates(
        self,
        candidates,
        front_gates: List[DAGNode],
        extended: List[DAGNode],
        layout: Layout,
    ) -> np.ndarray:
        """Eq. 2 cost of every candidate in one vectorized evaluation.

        The distance terms are the same fancy-indexed kernel the SABRE base class uses;
        only the per-candidate optimization estimates (``C2q``/``Ccommute``) remain a
        Python loop, because each one inspects the routed prefix through the estimator.
        Elementwise identical to the historical per-swap scalar scoring.
        """
        c0, c1 = self._candidate_arrays(candidates)
        num_front = len(front_gates)
        front_size = max(num_front, 1)
        table = self._mapped_distance_table(c0, c1, front_gates + extended, layout)
        distance_term = 3.0 * self._sequential_column_sums(table, 0, num_front)
        reductions = np.fromiter(
            (
                float(
                    self._estimate_for(swap).total(
                        self.config.enable_2q_resynthesis,
                        self.config.enable_commutation1,
                        self.config.enable_commutation2,
                    )
                )
                for swap in candidates
            ),
            dtype=float,
            count=len(candidates),
        )
        cost = (distance_term - reductions) / front_size
        if extended:
            ext_cost = self._sequential_column_sums(table, num_front, table.shape[1])
            cost += self.extended_set_weight * ext_cost / len(extended)
        decay = np.maximum(self._decay[c0], self._decay[c1])
        return decay * cost

    def _select_swap(self, candidates, front_gates, extended, layout, rng):
        # Estimates depend only on the already-routed prefix, which changes between SWAP
        # insertions: clear the per-step cache before scoring a fresh candidate set.
        self._estimates = {}
        return super()._select_swap(candidates, front_gates, extended, layout, rng)

    # ------------------------------------------------------------------
    # Optimization-aware SWAP decomposition (Sec. IV-E)
    # ------------------------------------------------------------------

    def _swap_label(self, swap, front_gates, layout, out) -> Optional[str]:
        self._out_circuit = out
        estimate = self._estimates.get(swap)
        if estimate is None:
            estimate = self._estimate_for(swap)
        if estimate.orientation is not None:
            return f"ctrl:{estimate.orientation}"
        return None


class NASSCRouting(TransformationPass):
    """Transpiler pass wrapper around :class:`NASSCSwapRouter`."""

    def __init__(
        self,
        coupling_map: CouplingMap,
        *,
        config: Optional[NASSCConfig] = None,
        extended_set_size: int = 20,
        extended_set_weight: float = 0.5,
        seed: Optional[int] = None,
        distance_matrix: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__()
        self.coupling_map = coupling_map
        self.router = NASSCSwapRouter(
            coupling_map,
            config=config,
            extended_set_size=extended_set_size,
            extended_set_weight=extended_set_weight,
            seed=seed,
            distance_matrix=distance_matrix,
        )

    def run(self, dag: DAGCircuit, property_set: PropertySet) -> DAGCircuit:
        layout = property_set.get("layout") or Layout.trivial(dag.num_qubits)
        result = self.router.route(dag, layout)
        property_set["final_layout"] = result.final_layout
        property_set["initial_layout"] = result.initial_layout
        property_set["num_swaps"] = result.num_swaps
        return result.dag

"""NASSC: optimization-aware qubit routing (the paper's contribution, Sec. IV).

:class:`NASSCSwapRouter` extends the SABRE router with the optimization-aware cost function
of Eq. 1/2: for every SWAP candidate the estimated CNOT reductions from two-qubit block
re-synthesis (``C2q``) and commutation-based cancellation (``Ccommute1``, ``Ccommute2``) are
subtracted from the nominal 3-CNOT SWAP cost.  Chosen SWAPs are additionally labelled with
the decomposition orientation that lets the subsequent passes realise the cancellation
(optimization-aware SWAP decomposition, Sec. IV-E).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..circuit.dag import DAGCircuit, DAGNode
from ..hardware.coupling import CouplingMap
from ..obs.counters import COUNTERS
from ..transpiler.passes.layout import Layout
from ..transpiler.passes.sabre import SabreSwapRouter
from ..transpiler.passmanager import PropertySet, TransformationPass
from .estimators import OptimizationEstimator, SwapEstimate


@dataclass(frozen=True)
class NASSCConfig:
    """Which of the three optimizations the cost function is aware of (paper Sec. IV-F).

    All three are enabled by default, matching the configuration the paper selects after the
    Figure 9 ablation.
    """

    enable_2q_resynthesis: bool = True
    enable_commutation1: bool = True
    enable_commutation2: bool = True

    @classmethod
    def all_combinations(cls) -> List["NASSCConfig"]:
        """The 8 enable/disable combinations evaluated in Figure 9."""
        combos = []
        for b2q in (False, True):
            for bc1 in (False, True):
                for bc2 in (False, True):
                    combos.append(cls(b2q, bc1, bc2))
        return combos

    def as_tuple(self) -> Tuple[bool, bool, bool]:
        return (self.enable_2q_resynthesis, self.enable_commutation1, self.enable_commutation2)


class NASSCSwapRouter(SabreSwapRouter):
    """Optimization-aware SWAP router (NASSC)."""

    def __init__(
        self,
        coupling_map: CouplingMap,
        *,
        config: Optional[NASSCConfig] = None,
        extended_set_size: int = 20,
        extended_set_weight: float = 0.5,
        decay_delta: float = 0.001,
        seed: Optional[int] = None,
        distance_matrix: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__(
            coupling_map,
            extended_set_size=extended_set_size,
            extended_set_weight=extended_set_weight,
            decay_delta=decay_delta,
            seed=seed,
            distance_matrix=distance_matrix,
        )
        self.config = config or NASSCConfig()
        self._estimator = OptimizationEstimator()
        self._estimates: Dict[Tuple[int, int], SwapEstimate] = {}
        self._estimate_memo: Dict[Tuple[int, int], Tuple[int, int, SwapEstimate]] = {}
        self._out_circuit = None

    # ------------------------------------------------------------------

    def _reset_routing_memos(self) -> None:
        # Called by the base class at the top of every routing run (in-memory and
        # streaming alike), so stale estimates never leak across runs.
        self._estimates = {}
        self._estimate_memo = {}

    def _execute_ready_gates(self, frontier, layout, out):
        # Keep a handle on the routed output so the estimators can inspect the resolved layer.
        self._out_circuit = out
        return super()._execute_ready_gates(frontier, layout, out)

    # ------------------------------------------------------------------
    # Optimization-aware cost function (Eq. 2)
    # ------------------------------------------------------------------

    def _estimate_for(self, swap: Tuple[int, int]) -> SwapEstimate:
        estimate = self._estimates.get(swap)
        if estimate is not None:
            return estimate
        # An estimate is a pure function of the routed prefixes of the swap's two wires:
        # the estimator only visits output positions recorded in the two wire histories,
        # and the output is append-only with immutable entries.  Wire histories grow by
        # appending strictly increasing positions, so an unchanged tail position per wire
        # proves both histories — and hence the estimate — are unchanged since the last
        # SWAP insertion.  That makes the cross-round memo below exact, not heuristic.
        history = self._wire_history
        h0, h1 = history[swap[0]], history[swap[1]]
        tail0 = h0[-1] if h0 else -1
        tail1 = h1[-1] if h1 else -1
        memo = self._estimate_memo.get(swap)
        if memo is not None and memo[0] == tail0 and memo[1] == tail1:
            estimate = memo[2]
            COUNTERS.inc("routing.nassc.estimate_memo_hits")
        else:
            COUNTERS.inc("routing.nassc.estimates")
            estimate = self._estimator.estimate(
                self._out_circuit,
                self._wire_history,
                swap[0],
                swap[1],
                enable_2q=self.config.enable_2q_resynthesis,
                enable_commute1=self.config.enable_commutation1,
                enable_commute2=self.config.enable_commutation2,
            )
            self._estimate_memo[swap] = (tail0, tail1, estimate)
        self._estimates[swap] = estimate
        return estimate

    def _begin_scoring(self, candidates) -> None:
        # The per-step table is rebuilt each scoring round (the routed prefix may have
        # changed); candidates whose two wires are untouched since their last estimate
        # are revalidated cheaply through ``_estimate_memo`` in ``_estimate_for``.
        self._estimates = {}
        super()._begin_scoring(candidates)

    def _finalize_scores(
        self,
        candidates,
        c0: np.ndarray,
        c1: np.ndarray,
        front_raw: np.ndarray,
        ext_raw: np.ndarray,
        front_gates: List[DAGNode],
        extended: List[DAGNode],
    ) -> np.ndarray:
        """Eq. 2 cost of every candidate from the shared kernel's raw distance sums.

        The distance terms come from the same batched kernel the SABRE base class uses;
        only the per-candidate optimization estimates (``C2q``/``Ccommute``) remain a
        Python loop, because each one inspects the routed prefix through the estimator.
        Elementwise identical to the historical per-swap scalar scoring.
        """
        front_size = max(len(front_gates), 1)
        distance_term = 3.0 * front_raw
        reductions = np.fromiter(
            (
                float(
                    self._estimate_for(swap).total(
                        self.config.enable_2q_resynthesis,
                        self.config.enable_commutation1,
                        self.config.enable_commutation2,
                    )
                )
                for swap in candidates
            ),
            dtype=float,
            count=len(candidates),
        )
        cost = (distance_term - reductions) / front_size
        if extended:
            cost += self.extended_set_weight * ext_raw / len(extended)
        decay = np.maximum(self._decay[c0], self._decay[c1])
        return decay * cost

    # ------------------------------------------------------------------
    # Optimization-aware SWAP decomposition (Sec. IV-E)
    # ------------------------------------------------------------------

    def _swap_label(self, swap, front_gates, layout, out) -> Optional[str]:
        self._out_circuit = out
        estimate = self._estimates.get(swap)
        if estimate is None:
            estimate = self._estimate_for(swap)
        if estimate.orientation is not None:
            return f"ctrl:{estimate.orientation}"
        return None


class NASSCRouting(TransformationPass):
    """Transpiler pass wrapper around :class:`NASSCSwapRouter`."""

    def __init__(
        self,
        coupling_map: CouplingMap,
        *,
        config: Optional[NASSCConfig] = None,
        extended_set_size: int = 20,
        extended_set_weight: float = 0.5,
        seed: Optional[int] = None,
        distance_matrix: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__()
        self.coupling_map = coupling_map
        self.router = NASSCSwapRouter(
            coupling_map,
            config=config,
            extended_set_size=extended_set_size,
            extended_set_weight=extended_set_weight,
            seed=seed,
            distance_matrix=distance_matrix,
        )

    def run(self, dag: DAGCircuit, property_set: PropertySet) -> DAGCircuit:
        layout = property_set.get("layout") or Layout.trivial(dag.num_qubits)
        result = self.router.route(dag, layout)
        property_set["final_layout"] = result.final_layout
        property_set["initial_layout"] = result.initial_layout
        property_set["num_swaps"] = result.num_swaps
        return result.dag

"""Figure 9: CNOT reduction of the best optimization combination vs enabling all three.

The paper evaluates all 8 enable/disable combinations of the two-qubit re-synthesis and the
two commutation optimizations on three coupling maps (Fig. 9a/9b/9c) and concludes that
enabling all three is close to the per-benchmark best, which justifies NASSC's default.
"""

import pytest

from repro.core import NASSCConfig, transpile
from repro.benchlib import get_benchmark
from repro.evaluation import format_ablation, run_optimization_ablation
from repro.hardware import montreal_coupling_map

from bench_config import FULL, SEEDS, save_report, selected_ablation_cases

TOPOLOGIES = ["montreal", "linear", "grid"] if FULL else ["montreal", "linear"]


@pytest.fixture(scope="module", params=TOPOLOGIES)
def ablation(request):
    rows = run_optimization_ablation(
        request.param, cases=selected_ablation_cases(), seeds=(SEEDS[0],), num_device_qubits=25
    )
    report = format_ablation(rows, request.param)
    print("\n" + report)
    save_report(f"fig9_ablation_{request.param}.txt", report)
    return request.param, rows


def test_fig9_all_enabled_close_to_best(ablation):
    """Enabling all three optimizations is close to the best of the 8 combinations."""
    _, rows = ablation
    for row in rows:
        assert row.best_reduction >= row.all_enabled_reduction - 1e-9
        # "Close" in the paper's sense: within 15 percentage points of the per-benchmark best.
        assert row.all_enabled_reduction >= row.best_reduction - 15.0


def test_fig9_some_combination_beats_sabre(ablation):
    _, rows = ablation
    assert any(row.best_reduction > 0 for row in rows)


@pytest.mark.benchmark(group="fig9-ablation")
@pytest.mark.parametrize(
    "combo",
    [(False, False, False), (True, False, False), (False, True, True), (True, True, True)],
    ids=["none", "2q-only", "commute-only", "all"],
)
def test_single_combination_speed(benchmark, combo, ablation):
    config = NASSCConfig(*combo)
    circuit = get_benchmark("grover_n4")
    coupling = montreal_coupling_map()
    result = benchmark(
        lambda: transpile(circuit, coupling, routing="nassc", seed=0, nassc_config=config)
    )
    assert result.cx_count > 0

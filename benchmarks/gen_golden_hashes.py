"""Regenerate the pinned golden O1 output hashes used by the determinism regression test.

Runs every registered built-in routing method over the quick table suite on the linear-25
and Montreal devices at level O1 / seed 0, and pins the sha256 of the emitted OpenQASM
text (plus the headline metrics) in ``tests/transpiler/golden_o1_hashes.json``.

The pinned hashes are the mechanical bit-identity check for hot-path refactors: any
change that alters compiled output — gate order, SWAP choice, rotation angles, labels —
changes a hash.  Only regenerate (``python benchmarks/gen_golden_hashes.py``) when an
output change is *intended*, and say so in the commit message.
"""

import hashlib
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import Target, TranspileOptions, transpile  # noqa: E402
from repro.benchlib import table_benchmarks  # noqa: E402
from repro.circuit import qasm  # noqa: E402
from repro.hardware import evaluation_devices  # noqa: E402

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "..", "tests", "transpiler", "golden_o1_hashes.json"
)

BENCHMARK_NAMES = [
    "grover_n4", "grover_n6", "vqe_n8", "bv_n19", "qft_n15", "qpe_n9", "adder_n10",
]
METHODS = ("none", "sabre", "nassc")
SEED = 0


def devices():
    return evaluation_devices()


def golden_cases():
    """(case key, circuit factory, target, options) for every pinned case."""
    cases = []
    benches = {case.name: case for case in table_benchmarks(names=BENCHMARK_NAMES)}
    for device_name, coupling in devices().items():
        target = Target(coupling_map=coupling, name=device_name)
        for bench_name in BENCHMARK_NAMES:
            for method in METHODS:
                key = f"{device_name}|{bench_name}|{method}"
                options = TranspileOptions(routing=method, seed=SEED, level="O1")
                cases.append((key, benches[bench_name], target, options))
    return cases


def compute_entry(case, target, options):
    result = transpile(case.build(), target, options)
    text = qasm.dumps(result.circuit)
    return {
        "qasm_sha256": hashlib.sha256(text.encode("utf-8")).hexdigest(),
        "cx_count": result.cx_count,
        "depth": result.depth,
        "num_swaps": result.num_swaps,
    }


def main():
    entries = {}
    for key, case, target, options in golden_cases():
        entries[key] = compute_entry(case, target, options)
        print(f"{key:40s} {entries[key]['qasm_sha256'][:16]}  cx={entries[key]['cx_count']}")
    payload = {
        "description": "sha256 of qasm.dumps for O1 output; regenerate only when output "
                       "changes are intended (benchmarks/gen_golden_hashes.py)",
        "seed": SEED,
        "level": "O1",
        "benchmarks": BENCHMARK_NAMES,
        "methods": list(METHODS),
        "devices": list(devices()),
        "cases": entries,
    }
    with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {len(entries)} cases to {os.path.normpath(GOLDEN_PATH)}")


if __name__ == "__main__":
    main()

"""Fleet throughput: concurrent clients against 1 vs N worker nodes.

Boots a real :class:`FleetCoordinator` fronting N :class:`FleetWorkerServer` nodes on
ephemeral ports (each node executing on its own single-worker **process** pool, so N
nodes genuinely mean N cores working — a thread pool would serialise on the GIL and
hide the scale-out).  Concurrent clients replay a transpile grid through the
coordinator and the harness reports, per fleet size:

* cache-cold jobs/sec and per-job p50/p99 latency,
* a warm resubmission replay — placement affinity routes every duplicate to the node
  whose cache holds it, so the warm rate measures cache-hit amplification — with the
  fleet's local-hit and peer-hit counters,
* bit-identity of a fleet-served result against a local in-process ``transpile()``.

Results go to ``benchmarks/results/fleet_throughput.{txt,json}``.  Smoke mode
(``REPRO_BENCH_SMOKE=1``, used by CI) shrinks the grid; ``REPRO_BENCH_FULL=1`` scales
the warm replay into the thousands of requests.
"""

import json
import multiprocessing
import os
import statistics
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import ReproClient, Target, TranspileJob, TranspileOptions, transpile
from repro.circuit import qasm
from repro.fleet import FleetCoordinator, FleetWorkerServer
from repro.server.http import ThreadedServer

from bench_config import FULL, RESULTS_DIR, save_report

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") not in ("0", "", "false")
GRID_NAMES = (
    ["grover_n4"] if SMOKE
    else (["grover_n4", "grover_n6", "vqe_n8", "qpe_n9", "adder_n10"] if FULL
          else ["grover_n4", "vqe_n8", "adder_n10"])
)
GRID_SEEDS = (0,) if SMOKE else ((0, 1, 2) if FULL else (0, 1))
FLEET_SIZES = (1, 3)
CLIENT_THREADS = 2 if SMOKE else 6
HEARTBEAT = 0.2


def available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # macOS
        return os.cpu_count() or 1


def warm_replays(grid_size: int) -> int:
    """How many times the warm replay resubmits the whole grid (the cache-hit
    amplification measurement).  FULL pushes the replay into the thousands of
    requests; smoke and default stay modest."""
    if SMOKE:
        return 1
    if FULL:
        return max(3, 2000 // max(1, grid_size))
    return 3


def build_jobs():
    """The transpile grid, plus the first (circuit, target) pair for identity checks."""
    from repro.benchlib import table_benchmarks

    target = Target.from_topology("linear", 25)
    jobs = []
    sample = None
    for case in table_benchmarks(names=GRID_NAMES):
        circuit = case.build()
        if sample is None:
            sample = (circuit, target)
        for routing in ("sabre", "nassc"):
            for seed in GRID_SEEDS:
                jobs.append(
                    TranspileJob.from_circuit(
                        circuit, target, TranspileOptions(routing=routing, seed=seed),
                        name=f"{case.name}[{routing},s{seed}]",
                    )
                )
    return jobs, sample


def boot_fleet(num_nodes: int):
    """A coordinator plus ``num_nodes`` workers, one process-pool worker each."""
    coordinator = ThreadedServer(
        FleetCoordinator(port=0, heartbeat_interval=HEARTBEAT)
    ).start()
    workers = [
        ThreadedServer(
            FleetWorkerServer(
                coordinator.url, port=0, node_id=f"bench-node-{index}",
                use_processes=True, max_workers=1, concurrency=1,
            )
        ).start()
        for index in range(num_nodes)
    ]
    client = ReproClient(coordinator.url, timeout=600.0)
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if client.healthz().get("nodes_alive", 0) >= num_nodes:
            break
        time.sleep(0.05)
    else:
        raise RuntimeError(f"fleet never reached {num_nodes} alive nodes")
    return coordinator, workers


def drive(url: str, submissions) -> dict:
    """Replay ``submissions`` from concurrent clients; rate + latency percentiles."""
    def one(job):
        client = ReproClient(url, timeout=600.0)
        started = time.perf_counter()
        result = client.submit_job(job).result(timeout=600.0)
        return time.perf_counter() - started, result

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=CLIENT_THREADS) as pool:
        outcomes = list(pool.map(one, submissions))
    elapsed = time.perf_counter() - start
    latencies = sorted(latency for latency, _ in outcomes)
    return {
        "jobs": len(submissions),
        "elapsed_seconds": elapsed,
        "jobs_per_second": len(submissions) / elapsed,
        "latency_p50_seconds": statistics.quantiles(latencies, n=100)[49]
        if len(latencies) >= 2 else latencies[0],
        "latency_p99_seconds": statistics.quantiles(latencies, n=100)[98]
        if len(latencies) >= 2 else latencies[0],
        "results": [result for _, result in outcomes],
    }


def fleet_counters(coordinator, workers) -> dict:
    """Local-hit / peer-hit counters across the fleet (the amplification evidence)."""
    local_hits = local_misses = peer_hits = 0
    for handle in workers:
        health = ReproClient(handle.url).healthz()
        cache = health.get("cache", {})
        local_hits += int(cache.get("hits", 0))
        local_misses += int(cache.get("misses", 0))
    metrics = ReproClient(coordinator.url).metrics_text()
    placements = {}
    for line in metrics.splitlines():
        if line.startswith("repro_fleet_placements_total{"):
            node = line.split('node="', 1)[1].split('"', 1)[0]
            placements[node] = float(line.rsplit(" ", 1)[1])
    from repro.obs.counters import COUNTERS

    snapshot = COUNTERS.snapshot()
    peer_hits = int(snapshot.get("cache.peer.hits", 0))
    return {
        "local_cache_hits": local_hits,
        "local_cache_misses": local_misses,
        "peer_cache_hits_process_wide": peer_hits,
        "placements_by_node": placements,
    }


@pytest.fixture(scope="module")
def fleet_report():
    jobs, (sample_circuit, sample_target) = build_jobs()
    runs = {}
    pool_kinds = {}
    identity_checked = False
    replays = warm_replays(len(jobs))
    for num_nodes in FLEET_SIZES:
        coordinator, workers = boot_fleet(num_nodes)
        try:
            cold = drive(coordinator.url, jobs)
            warm = drive(coordinator.url, jobs * replays)
            counters = fleet_counters(coordinator, workers)
            pool_kinds[num_nodes] = sorted(
                {ReproClient(w.url).healthz()["pool"] for w in workers}
            )
            if not identity_checked:
                # Acceptance: a fleet-served compile is bit-identical to the local
                # in-process transpile of the same job spec (jobs[0] is the sample
                # circuit with routing="sabre" and the first grid seed).
                fleet_result = cold["results"][0]
                local_result = transpile(
                    sample_circuit, sample_target,
                    routing="sabre", seed=GRID_SEEDS[0],
                )
                assert qasm.dumps(fleet_result.circuit) == qasm.dumps(
                    local_result.circuit
                ), "fleet result diverged from local transpile()"
                identity_checked = True
            cold.pop("results"), warm.pop("results")
            runs[num_nodes] = {"cold": cold, "warm": warm, "counters": counters}
        finally:
            for handle in workers:
                handle.stop(drain=False, timeout=10)
            coordinator.stop(timeout=10)
    # Pool shutdown is wait=False: the nodes' process-pool children exit
    # asynchronously.  Let them settle so timing-sensitive benchmark modules that
    # run after this one don't measure against our leftover CPU load.
    settle_deadline = time.monotonic() + 10
    while multiprocessing.active_children() and time.monotonic() < settle_deadline:
        time.sleep(0.05)

    lines = [
        f"Fleet throughput ({len(jobs)} cold jobs, warm replay x{replays}, "
        f"{CLIENT_THREADS} client threads)"
    ]
    for num_nodes, run in runs.items():
        lines.append(
            f"  {num_nodes} node(s) [{'/'.join(pool_kinds[num_nodes])}]: "
            f"cold {run['cold']['jobs_per_second']:7.2f} jobs/s "
            f"(p50 {run['cold']['latency_p50_seconds'] * 1e3:7.1f} ms, "
            f"p99 {run['cold']['latency_p99_seconds'] * 1e3:7.1f} ms) | "
            f"warm {run['warm']['jobs_per_second']:7.2f} jobs/s "
            f"(local hits {run['counters']['local_cache_hits']})"
        )
    report = "\n".join(lines)
    print("\n" + report)
    save_report("fleet_throughput.txt", report)
    payload = {
        "smoke": SMOKE,
        "full": FULL,
        "cpu_cores": available_cores(),
        "fleet_sizes": list(FLEET_SIZES),
        "grid_jobs": len(jobs),
        "warm_replays": replays,
        "client_threads": CLIENT_THREADS,
        "pool_kinds": {str(k): v for k, v in pool_kinds.items()},
        "bit_identical_to_local": identity_checked,
        "runs": {str(k): v for k, v in runs.items()},
    }
    with open(os.path.join(RESULTS_DIR, "fleet_throughput.json"), "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2)
    return payload


def test_report_written(fleet_report):
    assert os.path.exists(os.path.join(RESULTS_DIR, "fleet_throughput.json"))
    assert set(fleet_report["runs"]) == {str(n) for n in FLEET_SIZES}
    assert fleet_report["bit_identical_to_local"] is True


def test_multinode_beats_single_node_cold(fleet_report):
    """N nodes must out-rate 1 node on the cache-cold grid (the scale-out claim)."""
    single = fleet_report["runs"]["1"]["cold"]["jobs_per_second"]
    multi = fleet_report["runs"][str(FLEET_SIZES[-1])]["cold"]["jobs_per_second"]
    if SMOKE:
        pytest.skip("smoke grid is too small for a stable speedup measurement")
    if any(kinds != ["process"] for kinds in fleet_report["pool_kinds"].values()):
        pytest.skip("process pools unavailable — thread pools serialise on the GIL")
    cores = fleet_report["cpu_cores"]
    if cores < 2:
        pytest.skip(
            f"only {cores} CPU core(s) available — {FLEET_SIZES[-1]} single-core "
            "nodes cannot out-compute one node without extra cores"
        )
    assert multi > single, (
        f"{FLEET_SIZES[-1]} nodes ({multi:.2f} jobs/s) did not beat "
        f"1 node ({single:.2f} jobs/s)"
    )


def test_warm_replay_shows_cache_amplification(fleet_report):
    """Placement affinity must turn the warm replay into cache hits, not recomputes."""
    run = fleet_report["runs"][str(FLEET_SIZES[-1])]
    assert run["warm"]["jobs_per_second"] > run["cold"]["jobs_per_second"]
    # Every warm submission was answered from the cache tier somewhere in the fleet.
    assert run["counters"]["local_cache_hits"] >= run["warm"]["jobs"]


def test_placement_spreads_the_grid(fleet_report):
    """With N nodes, placement must actually use more than one node."""
    placements = fleet_report["runs"][str(FLEET_SIZES[-1])]["counters"][
        "placements_by_node"
    ]
    used = [node for node, count in placements.items() if count > 0]
    if fleet_report["grid_jobs"] < 4:
        pytest.skip("grid too small to guarantee spread")
    assert len(used) >= 2, f"all jobs landed on one node: {placements}"

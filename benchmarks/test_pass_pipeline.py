"""Transpile-pipeline wall-time benchmark and the tracked perf trajectory.

Runs the quick table suite over ``linear_25 + montreal × {none, sabre, nassc}`` at level
O1 / seed 0, attributing wall time to individual pass invocations through the
per-instance ``pass_timing_log`` the pass manager records, and emits the repo's perf
trajectory file ``BENCH_transpile.json`` (repo root): per device×benchmark×method
mean/median wall-time plus the per-pass breakdown.  The ``baseline`` block of that file
is frozen at the pre-vectorization measurement (PR 5) and preserved across re-runs as
the trajectory's anchor; ``current`` holds the latest full run.  The CI perf gate
(``benchmarks/check_perf_regression.py``) compares a fresh smoke run against the
committed ``current`` block — i.e. against the numbers recorded when the trajectory was
last updated — rescaled by the machine-speed calibration probe both reports embed, so a
slower CI runner does not trip the gate.

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI) shrinks the suite to one small
benchmark and writes to ``benchmarks/results/bench_transpile_smoke.json`` instead, so a
quick run never clobbers the committed full trajectory.

Repeat runs per case with ``REPRO_BENCH_REPEATS=N`` (default 1) for tighter
mean/median estimates.
"""

import json
import os
import statistics
import time

import pytest

from repro import Target, TranspileOptions, transpile
from repro.benchlib import table_benchmarks
from repro.hardware import evaluation_devices, linear_coupling_map, synthetic_calibration
from repro.schedule import schedule_circuit

from bench_config import QUICK_TABLE_NAMES, RESULTS_DIR, SEEDS, save_report

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") not in ("0", "", "false")
PIPELINE_NAMES = ["grover_n4"] if SMOKE else QUICK_TABLE_NAMES
PIPELINE_METHODS = ("none", "sabre", "nassc")
PIPELINE_SEED = SEEDS[0]
REPEATS = max(1, int(os.environ.get("REPRO_BENCH_REPEATS", "1")))
#: Ensemble size of the best-of-N comparison rows (0 disables them).
BEST_OF = int(os.environ.get("REPRO_BENCH_BEST_OF", "4"))
#: Methods that get a second, best-of-N timing row per device x benchmark.
BEST_OF_METHODS = ("sabre", "nassc") if BEST_OF > 1 else ()

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
TRAJECTORY_PATH = os.path.join(REPO_ROOT, "BENCH_transpile.json")
SMOKE_REPORT_PATH = os.path.join(RESULTS_DIR, "bench_transpile_smoke.json")


def pipeline_devices():
    return evaluation_devices()


def machine_calibration_seconds():
    """Fixed CPU-bound probe approximating the transpile workload mix.

    Best-of-3 runtime of a deterministic blend of Python bytecode and small complex
    matmuls (the two things the transpiler actually spends time on).  Embedded in every
    report so ``check_perf_regression.py`` can rescale wall-times recorded on a
    different (faster/slower) machine before applying the regression threshold.
    """
    import numpy as np

    base = (np.arange(16, dtype=float).reshape(4, 4) / 16.0 + 0.5j * np.eye(4))
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        acc = 0.0
        for i in range(150000):
            acc += (i % 7) * 0.5 - (i % 3)
        matrix = np.eye(4, dtype=complex)
        for _ in range(1500):
            matrix = (matrix @ base) / np.abs(matrix).max()
        best = min(best, time.perf_counter() - start)
    assert acc != 0.0 and matrix.shape == (4, 4)
    return best


@pytest.fixture(scope="module")
def pipeline_timings():
    """Transpile the suite once per device x benchmark x method, collecting timing logs."""
    cases = table_benchmarks(names=PIPELINE_NAMES)
    rows = []
    routed_outputs = []  # (row, routed circuit, calibration) for post-timing lowering

    def timed_row(target, calibration, device_name, case, circuit, routing, best_of):
        options = TranspileOptions(
            routing=routing, seed=PIPELINE_SEED, level="O1",
            best_of=best_of if best_of > 1 else None,
        )
        wall_times = []
        result = None
        for _ in range(REPEATS):
            start = time.perf_counter()
            result = transpile(circuit, target, options)
            wall_times.append(time.perf_counter() - start)
        label = routing if best_of <= 1 else f"{routing}_bo{best_of}"
        row = {
            "device": device_name,
            "benchmark": case.name,
            "routing": label,
            "base_routing": routing,
            "best_of": max(1, best_of),
            "repeats": REPEATS,
            "wall_time": statistics.mean(wall_times),
            "wall_time_mean": statistics.mean(wall_times),
            "wall_time_median": statistics.median(wall_times),
            "transpile_time": result.transpile_time,
            "cx_count": result.cx_count,
            "depth": result.depth,
            "num_swaps": result.num_swaps,
            "critical_path_ns": None,
            "pass_timing_log": [[name, t] for name, t in result.pass_timing_log],
            "pass_timings": result.pass_timings,
        }
        # Unrouted output ("none") may apply CNOTs to non-links, so its duration is
        # not a hardware quantity; it keeps critical_path_ns = null.
        if routing != "none":
            routed_outputs.append((row, result.circuit, calibration))
        return row

    for device_name, coupling in pipeline_devices().items():
        target = Target(coupling_map=coupling, name=device_name)
        calibration = synthetic_calibration(coupling)
        for case in cases:
            circuit = case.build()
            for routing in PIPELINE_METHODS:
                rows.append(timed_row(target, calibration, device_name, case, circuit, routing, 1))
            for routing in BEST_OF_METHODS:
                rows.append(
                    timed_row(target, calibration, device_name, case, circuit, routing, BEST_OF)
                )
    # Lower routed outputs to ASAP schedules only after every timed run has finished:
    # lowering allocates freely, and interleaving it with the timed loops would add GC
    # pauses to wall-times that feed the perf gate.
    for row, routed, calibration in routed_outputs:
        row["critical_path_ns"] = schedule_circuit(routed, calibration, "asap").duration
    return rows


@pytest.fixture(scope="module")
def duration_cost_summary():
    """Hops-cost vs ns-cost routing, compared on the ASAP critical path (nanoseconds).

    Routes every device x benchmark case twice with sabre at O1 / seed 0 on a
    calibrated target — once on the unit hop-count distance matrix, once on the
    duration-aware matrix — and compares the resulting schedule makespans.  This is the
    tracked evidence for the ``route_cost="ns"`` knob: scoring SWAP candidates by the
    nanoseconds they insert should shorten the critical path on a majority of the grid.
    """
    cases = table_benchmarks(names=PIPELINE_NAMES)
    comparisons = []
    for device_name, coupling in pipeline_devices().items():
        calibration = synthetic_calibration(coupling)
        target = Target(coupling_map=coupling, calibration=calibration, name=device_name)
        for case in cases:
            circuit = case.build()
            durations = {}
            for cost in ("hops", "ns"):
                result = transpile(circuit, target, TranspileOptions(
                    routing="sabre", seed=PIPELINE_SEED, level="O1",
                    route_cost=cost, schedule="asap",
                ))
                durations[cost] = result.schedule.duration
            comparisons.append({
                "device": device_name,
                "benchmark": case.name,
                "duration_hops_ns": durations["hops"],
                "duration_ns_cost_ns": durations["ns"],
                "delta_ns": durations["ns"] - durations["hops"],
            })
    return {
        "routing": "sabre",
        "seed": PIPELINE_SEED,
        "cases": len(comparisons),
        "better": sum(1 for c in comparisons if c["delta_ns"] < 0),
        "tied": sum(1 for c in comparisons if c["delta_ns"] == 0),
        "worse": sum(1 for c in comparisons if c["delta_ns"] > 0),
        "total_delta_ns": sum(c["delta_ns"] for c in comparisons),
        "comparisons": comparisons,
    }


def _best_of_summary(rows):
    """Pair each best-of-N row with its best_of=1 twin: 2q quality vs wall-time cost."""
    singles = {
        (row["device"], row["benchmark"], row["base_routing"]): row
        for row in rows
        if row.get("best_of", 1) == 1 and row["base_routing"] != "none"
    }
    comparisons = []
    for row in rows:
        if row.get("best_of", 1) <= 1:
            continue
        single = singles.get((row["device"], row["benchmark"], row["base_routing"]))
        if single is None:
            continue
        comparisons.append({
            "device": row["device"],
            "benchmark": row["benchmark"],
            "routing": row["base_routing"],
            "best_of": row["best_of"],
            "cx_single": single["cx_count"],
            "cx_best_of": row["cx_count"],
            "cx_delta": row["cx_count"] - single["cx_count"],
            "wall_single": single["wall_time_mean"],
            "wall_best_of": row["wall_time_mean"],
            "wall_ratio": (
                row["wall_time_mean"] / single["wall_time_mean"]
                if single["wall_time_mean"] > 0 else float("inf")
            ),
        })
    if not comparisons:
        return None
    ratios = [c["wall_ratio"] for c in comparisons]
    return {
        "best_of": comparisons[0]["best_of"],
        "cases": len(comparisons),
        "improved": sum(1 for c in comparisons if c["cx_delta"] < 0),
        "tied": sum(1 for c in comparisons if c["cx_delta"] == 0),
        "worse": sum(1 for c in comparisons if c["cx_delta"] > 0),
        # Primary cost statistic: total best-of wall-time over total single wall-time.
        # Per-case ratios are also recorded, but the sub-50ms cases make their mean a
        # noise amplifier (10ms of timer jitter moves a small case's ratio by ~0.5);
        # the aggregate weights every case by the compute it actually consumed.
        "aggregate_wall_ratio": (
            sum(c["wall_best_of"] for c in comparisons)
            / max(sum(c["wall_single"] for c in comparisons), 1e-12)
        ),
        "mean_wall_ratio": statistics.mean(ratios),
        "median_wall_ratio": statistics.median(ratios),
        "max_wall_ratio": max(ratios),
        "comparisons": comparisons,
    }


def _summarise(rows):
    per_pass = {}
    wall_times = []
    for row in rows:
        wall_times.append(row["wall_time_mean"])
        for name, elapsed in row["pass_timing_log"]:
            per_pass[name] = per_pass.get(name, 0.0) + elapsed
    return {
        "suite": "pipeline-grid",
        "smoke": SMOKE,
        "devices": list(pipeline_devices()),
        "benchmarks": PIPELINE_NAMES,
        "methods": list(PIPELINE_METHODS),
        "seed": PIPELINE_SEED,
        "repeats": REPEATS,
        "num_cases": len(rows),
        "best_of": BEST_OF,
        "best_of_summary": _best_of_summary(rows),
        "calibration_seconds": machine_calibration_seconds(),
        "mean_wall_time": statistics.mean(wall_times) if wall_times else 0.0,
        "median_wall_time": statistics.median(wall_times) if wall_times else 0.0,
        "total_wall_time": sum(wall_times),
        "per_pass_seconds": dict(sorted(per_pass.items(), key=lambda kv: -kv[1])),
        "rows": rows,
    }


@pytest.fixture(scope="module")
def pipeline_report(pipeline_timings, duration_cost_summary):
    """Aggregate the grid, update the tracked trajectory file, and persist reports."""
    summary = _summarise(pipeline_timings)
    summary["duration_cost_summary"] = duration_cost_summary

    if SMOKE:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        with open(SMOKE_REPORT_PATH, "w", encoding="utf-8") as handle:
            json.dump({"current": summary}, handle, indent=2)
    else:
        trajectory = {}
        if os.path.exists(TRAJECTORY_PATH):
            with open(TRAJECTORY_PATH, encoding="utf-8") as handle:
                trajectory = json.load(handle)
        # The baseline block is frozen at the first full recording (the pre-vectorization
        # hot path of PR 5) and only ever written when absent.
        if "baseline" not in trajectory:
            trajectory["baseline"] = summary
        elif "calibration_seconds" not in trajectory["baseline"]:
            # The probe measures machine speed, not the hot path, so backfilling a
            # baseline recorded on this same machine with today's calibration is sound.
            trajectory["baseline"]["calibration_seconds"] = summary["calibration_seconds"]
        trajectory["current"] = summary
        trajectory["description"] = (
            "Transpile perf trajectory: 'baseline' is the frozen pre-vectorization "
            "measurement, 'current' the latest full run of "
            "benchmarks/test_pass_pipeline.py on this machine."
        )
        with open(TRAJECTORY_PATH, "w", encoding="utf-8") as handle:
            json.dump(trajectory, handle, indent=2)
            handle.write("\n")

    # Human-readable per-pass breakdown alongside the other benchmark reports.
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "pass_pipeline.json"), "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2)
    lines = [f"Pipeline grid wall time (seed {PIPELINE_SEED}, {summary['num_cases']} cases)"]
    lines.append(f"mean {summary['mean_wall_time']:.3f}s  median "
                 f"{summary['median_wall_time']:.3f}s  total {summary['total_wall_time']:.3f}s")
    for name, seconds in summary["per_pass_seconds"].items():
        lines.append(f"  {name:32s} {seconds:8.3f}s")
    best_of = summary["best_of_summary"]
    if best_of is not None:
        lines.append(
            f"best-of-{best_of['best_of']} vs single trial over {best_of['cases']} cases: "
            f"{best_of['improved']} improved / {best_of['tied']} tied / "
            f"{best_of['worse']} worse on routed CX; wall-time ratio aggregate "
            f"{best_of['aggregate_wall_ratio']:.2f}x, mean {best_of['mean_wall_ratio']:.2f}x, "
            f"max {best_of['max_wall_ratio']:.2f}x"
        )
    durations = summary["duration_cost_summary"]
    lines.append(
        f"ns-cost vs hops-cost routing over {durations['cases']} cases: "
        f"{durations['better']} shorter / {durations['tied']} tied / "
        f"{durations['worse']} longer on the ASAP critical path "
        f"(total delta {durations['total_delta_ns']} ns)"
    )
    text = "\n".join(lines)
    print("\n" + text)
    save_report("pass_pipeline.txt", text)
    return summary


def test_breakdown_written(pipeline_report):
    path = os.path.join(RESULTS_DIR, "pass_pipeline.json")
    assert os.path.exists(path)
    with open(path, encoding="utf-8") as handle:
        assert json.load(handle)["rows"]


def test_trajectory_file_has_baseline_and_current(pipeline_report):
    """The committed trajectory file always carries both blocks with comparable rows."""
    path = SMOKE_REPORT_PATH if SMOKE else TRAJECTORY_PATH
    assert os.path.exists(path)
    with open(path, encoding="utf-8") as handle:
        trajectory = json.load(handle)
    assert "current" in trajectory
    if not SMOKE:
        assert "baseline" in trajectory
        for block in ("baseline", "current"):
            for row in trajectory[block]["rows"]:
                assert {"device", "benchmark", "routing", "wall_time_mean",
                        "wall_time_median"} <= set(row)


def test_best_of_rows_recorded(pipeline_report):
    """Every sabre/nassc case carries a paired best-of-N comparison in the summary."""
    if BEST_OF <= 1:
        pytest.skip("best-of rows disabled via REPRO_BENCH_BEST_OF")
    summary = pipeline_report["best_of_summary"]
    assert summary is not None
    expected = len(pipeline_devices()) * len(PIPELINE_NAMES) * len(BEST_OF_METHODS)
    assert summary["cases"] == expected
    assert summary["improved"] + summary["tied"] + summary["worse"] == summary["cases"]
    for comparison in summary["comparisons"]:
        assert comparison["cx_delta"] == comparison["cx_best_of"] - comparison["cx_single"]
        assert comparison["wall_ratio"] > 0


def test_best_of_improves_quality_within_budget(pipeline_report):
    """Acceptance: best-of-N beats single-trial CX on a strict majority of routed
    cases while staying within the amortized wall-time budget (full grid only —
    the smoke subset is too small for a majority to be meaningful)."""
    if BEST_OF <= 1:
        pytest.skip("best-of rows disabled via REPRO_BENCH_BEST_OF")
    summary = pipeline_report["best_of_summary"]
    assert summary is not None
    if summary["cases"] < 10:
        pytest.skip("too few cases for the majority criterion")
    assert summary["improved"] > summary["cases"] // 2, (
        f"best_of={summary['best_of']} improved only {summary['improved']} of "
        f"{summary['cases']} cases"
    )
    # Wall-time is only gated on runs with repeated measurements (CI's dedicated
    # bench jobs use REPRO_BENCH_REPEATS>=3): a single-repeat run inside a larger
    # pytest session measures session cache-warmth, not ensemble cost.
    if REPEATS >= 2:
        assert summary["aggregate_wall_ratio"] <= 2.5, (
            f"aggregate wall-time ratio {summary['aggregate_wall_ratio']:.2f}x exceeds "
            f"the 2.5x amortization budget for best_of={summary['best_of']}"
        )


def test_critical_path_recorded_per_case(pipeline_report):
    """Every routed row carries the schedule makespan; unrouted rows record null."""
    for row in pipeline_report["rows"]:
        if row["base_routing"] == "none":
            assert row["critical_path_ns"] is None
        else:
            assert row["critical_path_ns"] > 0


def test_ns_cost_routing_shortens_critical_path_on_majority(pipeline_report):
    """Acceptance: duration-aware (ns-cost) routing yields an ASAP critical path no
    longer than unit-cost routing's on a strict majority of the evaluation grid
    (full grid only — the smoke subset is too small for a majority to be meaningful)."""
    summary = pipeline_report["duration_cost_summary"]
    if summary["cases"] < 10:
        pytest.skip("too few cases for the majority criterion")
    not_longer = summary["better"] + summary["tied"]
    assert not_longer > summary["cases"] // 2, (
        f"ns-cost routing matched or beat hops-cost on only {not_longer} of "
        f"{summary['cases']} cases"
    )


def test_timing_log_covers_transpile_time(pipeline_timings):
    """The per-instance log accounts for (almost all of) each run's transpile time."""
    for row in pipeline_timings:
        logged = sum(t for _, t in row["pass_timing_log"])
        assert logged <= row["transpile_time"] + 1e-6
        assert logged >= 0.5 * row["transpile_time"]


def test_commutation_analysis_not_recomputed_inside_cancellation(pipeline_timings):
    """Commutation analysis runs at most once per optimization-loop iteration.

    ``CommutativeCancellation`` appears once per loop iteration; the refactor guarantees it
    never rebuilds the analysis when a cached (incrementally patched) one is valid, which
    bounds the number of from-scratch analyses by the number of loop iterations.
    """
    from repro.circuit import DAGCircuit
    from repro.transpiler import PropertySet
    from repro.transpiler.passes import CommutationAnalysis, CommutativeCancellation
    from repro.benchlib import get_benchmark

    calls = []
    original = CommutationAnalysis.run

    def counting_run(self, dag, property_set):
        calls.append(1)
        return original(self, dag, property_set)

    CommutationAnalysis.run = counting_run
    try:
        dag = DAGCircuit.from_circuit(get_benchmark("grover_n4"))
        props = PropertySet()
        pass_ = CommutativeCancellation()
        pass_.run(dag, props)
        first = len(calls)
        # Second invocation on the (patched) property set: no from-scratch recomputation.
        pass_.run(dag, props)
        assert first == 1
        assert len(calls) == 1
    finally:
        CommutationAnalysis.run = original


def test_optimization_loop_iteration_bound(pipeline_timings):
    """The declared fixed-point loop never exceeds its iteration cap."""
    from repro.core.pipeline import MAX_OPT_LOOP_ITERATIONS

    for row in pipeline_timings:
        if row["routing"] == "none":
            continue
        names = [name for name, _ in row["pass_timing_log"]]
        post_routing_us = names[names.index("SwapLowering"):].count("UnitarySynthesis")
        assert 1 <= post_routing_us <= MAX_OPT_LOOP_ITERATIONS


@pytest.mark.benchmark(group="pass-pipeline")
@pytest.mark.parametrize("routing", ["sabre", "nassc"])
def test_pipeline_speed(benchmark, routing):
    """Headline number: one full transpile of the suite's smallest circuit."""
    coupling = linear_coupling_map(25)
    target = Target(coupling_map=coupling)
    circuit = table_benchmarks(names=[PIPELINE_NAMES[0]])[0].build()
    options = TranspileOptions(routing=routing, seed=PIPELINE_SEED)
    result = benchmark(lambda: transpile(circuit, target, options))
    assert result.cx_count > 0

"""Transpile-pipeline wall-time benchmark and the tracked perf trajectory.

Runs the quick table suite over ``linear_25 + montreal × {none, sabre, nassc}`` at level
O1 / seed 0, attributing wall time to individual pass invocations through the
per-instance ``pass_timing_log`` the pass manager records, and emits the repo's perf
trajectory file ``BENCH_transpile.json`` (repo root): per device×benchmark×method
mean/median wall-time plus the per-pass breakdown.  The ``baseline`` block of that file
is frozen at the pre-vectorization measurement (PR 5) and preserved across re-runs as
the trajectory's anchor; ``current`` holds the latest full run.  The CI perf gate
(``benchmarks/check_perf_regression.py``) compares a fresh smoke run against the
committed ``current`` block — i.e. against the numbers recorded when the trajectory was
last updated — rescaled by the machine-speed calibration probe both reports embed, so a
slower CI runner does not trip the gate.

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI) shrinks the suite to one small
benchmark and writes to ``benchmarks/results/bench_transpile_smoke.json`` instead, so a
quick run never clobbers the committed full trajectory.

Repeat runs per case with ``REPRO_BENCH_REPEATS=N`` (default 1) for tighter
mean/median estimates.
"""

import json
import os
import statistics
import time

import pytest

from repro import Target, TranspileOptions, transpile
from repro.benchlib import table_benchmarks
from repro.hardware import evaluation_devices, linear_coupling_map

from bench_config import QUICK_TABLE_NAMES, RESULTS_DIR, SEEDS, save_report

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") not in ("0", "", "false")
PIPELINE_NAMES = ["grover_n4"] if SMOKE else QUICK_TABLE_NAMES
PIPELINE_METHODS = ("none", "sabre", "nassc")
PIPELINE_SEED = SEEDS[0]
REPEATS = max(1, int(os.environ.get("REPRO_BENCH_REPEATS", "1")))

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
TRAJECTORY_PATH = os.path.join(REPO_ROOT, "BENCH_transpile.json")
SMOKE_REPORT_PATH = os.path.join(RESULTS_DIR, "bench_transpile_smoke.json")


def pipeline_devices():
    return evaluation_devices()


def machine_calibration_seconds():
    """Fixed CPU-bound probe approximating the transpile workload mix.

    Best-of-3 runtime of a deterministic blend of Python bytecode and small complex
    matmuls (the two things the transpiler actually spends time on).  Embedded in every
    report so ``check_perf_regression.py`` can rescale wall-times recorded on a
    different (faster/slower) machine before applying the regression threshold.
    """
    import numpy as np

    base = (np.arange(16, dtype=float).reshape(4, 4) / 16.0 + 0.5j * np.eye(4))
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        acc = 0.0
        for i in range(150000):
            acc += (i % 7) * 0.5 - (i % 3)
        matrix = np.eye(4, dtype=complex)
        for _ in range(1500):
            matrix = (matrix @ base) / np.abs(matrix).max()
        best = min(best, time.perf_counter() - start)
    assert acc != 0.0 and matrix.shape == (4, 4)
    return best


@pytest.fixture(scope="module")
def pipeline_timings():
    """Transpile the suite once per device x benchmark x method, collecting timing logs."""
    cases = table_benchmarks(names=PIPELINE_NAMES)
    rows = []
    for device_name, coupling in pipeline_devices().items():
        target = Target(coupling_map=coupling, name=device_name)
        for case in cases:
            circuit = case.build()
            for routing in PIPELINE_METHODS:
                options = TranspileOptions(routing=routing, seed=PIPELINE_SEED, level="O1")
                wall_times = []
                result = None
                for _ in range(REPEATS):
                    start = time.perf_counter()
                    result = transpile(circuit, target, options)
                    wall_times.append(time.perf_counter() - start)
                rows.append(
                    {
                        "device": device_name,
                        "benchmark": case.name,
                        "routing": routing,
                        "repeats": REPEATS,
                        "wall_time": statistics.mean(wall_times),
                        "wall_time_mean": statistics.mean(wall_times),
                        "wall_time_median": statistics.median(wall_times),
                        "transpile_time": result.transpile_time,
                        "cx_count": result.cx_count,
                        "depth": result.depth,
                        "num_swaps": result.num_swaps,
                        "pass_timing_log": [[name, t] for name, t in result.pass_timing_log],
                        "pass_timings": result.pass_timings,
                    }
                )
    return rows


def _summarise(rows):
    per_pass = {}
    wall_times = []
    for row in rows:
        wall_times.append(row["wall_time_mean"])
        for name, elapsed in row["pass_timing_log"]:
            per_pass[name] = per_pass.get(name, 0.0) + elapsed
    return {
        "suite": "pipeline-grid",
        "smoke": SMOKE,
        "devices": list(pipeline_devices()),
        "benchmarks": PIPELINE_NAMES,
        "methods": list(PIPELINE_METHODS),
        "seed": PIPELINE_SEED,
        "repeats": REPEATS,
        "num_cases": len(rows),
        "calibration_seconds": machine_calibration_seconds(),
        "mean_wall_time": statistics.mean(wall_times) if wall_times else 0.0,
        "median_wall_time": statistics.median(wall_times) if wall_times else 0.0,
        "total_wall_time": sum(wall_times),
        "per_pass_seconds": dict(sorted(per_pass.items(), key=lambda kv: -kv[1])),
        "rows": rows,
    }


@pytest.fixture(scope="module")
def pipeline_report(pipeline_timings):
    """Aggregate the grid, update the tracked trajectory file, and persist reports."""
    summary = _summarise(pipeline_timings)

    if SMOKE:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        with open(SMOKE_REPORT_PATH, "w", encoding="utf-8") as handle:
            json.dump({"current": summary}, handle, indent=2)
    else:
        trajectory = {}
        if os.path.exists(TRAJECTORY_PATH):
            with open(TRAJECTORY_PATH, encoding="utf-8") as handle:
                trajectory = json.load(handle)
        # The baseline block is frozen at the first full recording (the pre-vectorization
        # hot path of PR 5) and only ever written when absent.
        if "baseline" not in trajectory:
            trajectory["baseline"] = summary
        elif "calibration_seconds" not in trajectory["baseline"]:
            # The probe measures machine speed, not the hot path, so backfilling a
            # baseline recorded on this same machine with today's calibration is sound.
            trajectory["baseline"]["calibration_seconds"] = summary["calibration_seconds"]
        trajectory["current"] = summary
        trajectory["description"] = (
            "Transpile perf trajectory: 'baseline' is the frozen pre-vectorization "
            "measurement, 'current' the latest full run of "
            "benchmarks/test_pass_pipeline.py on this machine."
        )
        with open(TRAJECTORY_PATH, "w", encoding="utf-8") as handle:
            json.dump(trajectory, handle, indent=2)
            handle.write("\n")

    # Human-readable per-pass breakdown alongside the other benchmark reports.
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "pass_pipeline.json"), "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2)
    lines = [f"Pipeline grid wall time (seed {PIPELINE_SEED}, {summary['num_cases']} cases)"]
    lines.append(f"mean {summary['mean_wall_time']:.3f}s  median "
                 f"{summary['median_wall_time']:.3f}s  total {summary['total_wall_time']:.3f}s")
    for name, seconds in summary["per_pass_seconds"].items():
        lines.append(f"  {name:32s} {seconds:8.3f}s")
    text = "\n".join(lines)
    print("\n" + text)
    save_report("pass_pipeline.txt", text)
    return summary


def test_breakdown_written(pipeline_report):
    path = os.path.join(RESULTS_DIR, "pass_pipeline.json")
    assert os.path.exists(path)
    with open(path, encoding="utf-8") as handle:
        assert json.load(handle)["rows"]


def test_trajectory_file_has_baseline_and_current(pipeline_report):
    """The committed trajectory file always carries both blocks with comparable rows."""
    path = SMOKE_REPORT_PATH if SMOKE else TRAJECTORY_PATH
    assert os.path.exists(path)
    with open(path, encoding="utf-8") as handle:
        trajectory = json.load(handle)
    assert "current" in trajectory
    if not SMOKE:
        assert "baseline" in trajectory
        for block in ("baseline", "current"):
            for row in trajectory[block]["rows"]:
                assert {"device", "benchmark", "routing", "wall_time_mean",
                        "wall_time_median"} <= set(row)


def test_timing_log_covers_transpile_time(pipeline_timings):
    """The per-instance log accounts for (almost all of) each run's transpile time."""
    for row in pipeline_timings:
        logged = sum(t for _, t in row["pass_timing_log"])
        assert logged <= row["transpile_time"] + 1e-6
        assert logged >= 0.5 * row["transpile_time"]


def test_commutation_analysis_not_recomputed_inside_cancellation(pipeline_timings):
    """Commutation analysis runs at most once per optimization-loop iteration.

    ``CommutativeCancellation`` appears once per loop iteration; the refactor guarantees it
    never rebuilds the analysis when a cached (incrementally patched) one is valid, which
    bounds the number of from-scratch analyses by the number of loop iterations.
    """
    from repro.circuit import DAGCircuit
    from repro.transpiler import PropertySet
    from repro.transpiler.passes import CommutationAnalysis, CommutativeCancellation
    from repro.benchlib import get_benchmark

    calls = []
    original = CommutationAnalysis.run

    def counting_run(self, dag, property_set):
        calls.append(1)
        return original(self, dag, property_set)

    CommutationAnalysis.run = counting_run
    try:
        dag = DAGCircuit.from_circuit(get_benchmark("grover_n4"))
        props = PropertySet()
        pass_ = CommutativeCancellation()
        pass_.run(dag, props)
        first = len(calls)
        # Second invocation on the (patched) property set: no from-scratch recomputation.
        pass_.run(dag, props)
        assert first == 1
        assert len(calls) == 1
    finally:
        CommutationAnalysis.run = original


def test_optimization_loop_iteration_bound(pipeline_timings):
    """The declared fixed-point loop never exceeds its iteration cap."""
    from repro.core.pipeline import MAX_OPT_LOOP_ITERATIONS

    for row in pipeline_timings:
        if row["routing"] == "none":
            continue
        names = [name for name, _ in row["pass_timing_log"]]
        post_routing_us = names[names.index("SwapLowering"):].count("UnitarySynthesis")
        assert 1 <= post_routing_us <= MAX_OPT_LOOP_ITERATIONS


@pytest.mark.benchmark(group="pass-pipeline")
@pytest.mark.parametrize("routing", ["sabre", "nassc"])
def test_pipeline_speed(benchmark, routing):
    """Headline number: one full transpile of the suite's smallest circuit."""
    coupling = linear_coupling_map(25)
    target = Target(coupling_map=coupling)
    circuit = table_benchmarks(names=[PIPELINE_NAMES[0]])[0].build()
    options = TranspileOptions(routing=routing, seed=PIPELINE_SEED)
    result = benchmark(lambda: transpile(circuit, target, options))
    assert result.cx_count > 0

"""Per-pass wall-time of the transpile pipeline over the Table-III linear suite.

Uses the per-instance ``pass_timing_log`` the pass manager records to attribute wall time
to individual pass invocations (fixed-point loop iterations stay distinguishable), writes a
JSON breakdown under ``benchmarks/results/`` so future PRs can diff per-pass regressions,
and asserts the structural properties the DAG-native refactor guarantees: commutation
analysis runs at most once per optimization-loop iteration, and the optimization loop
stops once it reaches a fixed point.

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI) shrinks the suite to one small benchmark
so the harness runs in seconds while still exercising every assertion.
"""

import json
import os
import time

import pytest

from repro.benchlib import table_benchmarks
from repro.core import transpile
from repro.hardware import linear_coupling_map

from bench_config import QUICK_TABLE_NAMES, RESULTS_DIR, SEEDS, save_report

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") not in ("0", "", "false")
PIPELINE_NAMES = ["grover_n4"] if SMOKE else QUICK_TABLE_NAMES
PIPELINE_SEED = SEEDS[0]


@pytest.fixture(scope="module")
def pipeline_timings():
    """Transpile the linear suite once per routing method, collecting timing logs."""
    coupling = linear_coupling_map(25)
    cases = table_benchmarks(names=PIPELINE_NAMES)
    rows = []
    for case in cases:
        circuit = case.build()
        for routing in ("sabre", "nassc"):
            start = time.perf_counter()
            result = transpile(circuit, coupling, routing=routing, seed=PIPELINE_SEED)
            elapsed = time.perf_counter() - start
            rows.append(
                {
                    "benchmark": case.name,
                    "routing": routing,
                    "wall_time": elapsed,
                    "transpile_time": result.transpile_time,
                    "cx_count": result.cx_count,
                    "depth": result.depth,
                    "num_swaps": result.num_swaps,
                    "pass_timing_log": [[name, t] for name, t in result.pass_timing_log],
                    "pass_timings": result.pass_timings,
                }
            )
    return rows


@pytest.fixture(scope="module")
def pipeline_report(pipeline_timings):
    """Aggregate per-pass totals and persist the JSON breakdown."""
    per_pass = {}
    total = 0.0
    for row in pipeline_timings:
        total += row["wall_time"]
        for name, elapsed in row["pass_timing_log"]:
            per_pass[name] = per_pass.get(name, 0.0) + elapsed
    report = {
        "suite": "table3-linear",
        "smoke": SMOKE,
        "benchmarks": PIPELINE_NAMES,
        "seed": PIPELINE_SEED,
        "mean_transpile_time": total / max(len(pipeline_timings), 1),
        "total_wall_time": total,
        "per_pass_seconds": dict(sorted(per_pass.items(), key=lambda kv: -kv[1])),
        "rows": pipeline_timings,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "pass_pipeline.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    lines = [f"Pass pipeline wall time (linear_25, seed {PIPELINE_SEED})"]
    lines.append(f"mean transpile: {report['mean_transpile_time']:.3f}s over "
                 f"{len(pipeline_timings)} runs")
    for name, seconds in report["per_pass_seconds"].items():
        lines.append(f"  {name:32s} {seconds:8.3f}s")
    text = "\n".join(lines)
    print("\n" + text)
    save_report("pass_pipeline.txt", text)
    return report


def test_breakdown_written(pipeline_report):
    path = os.path.join(RESULTS_DIR, "pass_pipeline.json")
    assert os.path.exists(path)
    with open(path, encoding="utf-8") as handle:
        assert json.load(handle)["rows"]


def test_timing_log_covers_transpile_time(pipeline_timings):
    """The per-instance log accounts for (almost all of) each run's transpile time."""
    for row in pipeline_timings:
        logged = sum(t for _, t in row["pass_timing_log"])
        assert logged <= row["transpile_time"] + 1e-6
        assert logged >= 0.5 * row["transpile_time"]


def test_commutation_analysis_not_recomputed_inside_cancellation(pipeline_timings):
    """Commutation analysis runs at most once per optimization-loop iteration.

    ``CommutativeCancellation`` appears once per loop iteration; the refactor guarantees it
    never rebuilds the analysis when a cached (incrementally patched) one is valid, which
    bounds the number of from-scratch analyses by the number of loop iterations.
    """
    from repro.circuit import DAGCircuit
    from repro.transpiler import PropertySet
    from repro.transpiler.passes import CommutationAnalysis, CommutativeCancellation
    from repro.benchlib import get_benchmark

    calls = []
    original = CommutationAnalysis.run

    def counting_run(self, dag, property_set):
        calls.append(1)
        return original(self, dag, property_set)

    CommutationAnalysis.run = counting_run
    try:
        dag = DAGCircuit.from_circuit(get_benchmark("grover_n4"))
        props = PropertySet()
        pass_ = CommutativeCancellation()
        pass_.run(dag, props)
        first = len(calls)
        # Second invocation on the (patched) property set: no from-scratch recomputation.
        pass_.run(dag, props)
        assert first == 1
        assert len(calls) == 1
    finally:
        CommutationAnalysis.run = original


def test_optimization_loop_iteration_bound(pipeline_timings):
    """The declared fixed-point loop never exceeds its iteration cap."""
    from repro.core.pipeline import MAX_OPT_LOOP_ITERATIONS

    for row in pipeline_timings:
        names = [name for name, _ in row["pass_timing_log"]]
        post_routing_us = names[names.index("SwapLowering"):].count("UnitarySynthesis")
        assert 1 <= post_routing_us <= MAX_OPT_LOOP_ITERATIONS


@pytest.mark.benchmark(group="pass-pipeline")
@pytest.mark.parametrize("routing", ["sabre", "nassc"])
def test_pipeline_speed(benchmark, routing):
    """Headline number: one full transpile of the suite's smallest circuit."""
    coupling = linear_coupling_map(25)
    circuit = table_benchmarks(names=[PIPELINE_NAMES[0]])[0].build()
    result = benchmark(lambda: transpile(circuit, coupling, routing=routing, seed=PIPELINE_SEED))
    assert result.cx_count > 0

"""Figure 11: added CNOTs and success rate of SABRE / NASSC / SABRE+HA / NASSC+HA under the
``ibmq_montreal`` noise model (synthetic calibration, see DESIGN.md)."""

import numpy as np
import pytest

from repro.benchlib import get_benchmark
from repro.evaluation import NOISE_METHODS, format_noise_experiment, run_noise_experiment
from repro.hardware import fake_montreal_calibration, montreal_coupling_map
from repro.simulator import NoiseModel, NoisySimulator
from repro.core import transpile

from bench_config import NOISE_REALIZATIONS, NOISE_SHOTS, save_report


@pytest.fixture(scope="module")
def fig11_rows():
    rows = run_noise_experiment(shots=NOISE_SHOTS, realizations=NOISE_REALIZATIONS, seed=0)
    report = format_noise_experiment(rows)
    print("\n" + report)
    save_report("fig11_noise.txt", report)
    return rows


def test_fig11a_added_cnots(fig11_rows):
    """Figure 11a: NASSC adds the fewest (or tied-fewest) CNOTs in aggregate."""
    totals = {method: sum(row.added_cx[method] for row in fig11_rows) for method in NOISE_METHODS}
    assert totals["nassc"] <= totals["sabre"]
    assert totals["nassc"] <= min(totals.values()) + 10


def test_fig11b_success_rates(fig11_rows):
    """Figure 11b: success rates are meaningful (non-degenerate) and NASSC is competitive."""
    mean_rates = {
        method: float(np.mean([row.success_rate[method] for row in fig11_rows]))
        for method in NOISE_METHODS
    }
    assert all(0.0 < rate <= 1.0 for rate in mean_rates.values())
    # NASSC's mean success rate should be within a few points of the best method.
    assert mean_rates["nassc"] >= max(mean_rates.values()) - 0.15


@pytest.mark.benchmark(group="fig11-noise")
def test_noisy_simulation_speed(benchmark, fig11_rows):
    """Wall-clock of one noisy Monte-Carlo simulation (the dominant Fig. 11 cost)."""
    calibration = fake_montreal_calibration()
    circuit = get_benchmark("grover_n4")
    routed = transpile(circuit, montreal_coupling_map(), routing="nassc", seed=0).circuit
    simulator = NoisySimulator(
        NoiseModel.from_calibration(calibration), realizations=32, seed=0
    )
    rate = benchmark(lambda: simulator.success_rate(routed, shots=512))
    assert 0.0 <= rate <= 1.0

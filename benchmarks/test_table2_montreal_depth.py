"""Table II: circuit depth of NASSC vs Qiskit+SABRE on ``ibmq_montreal``."""

import pytest

from repro.benchlib import get_benchmark
from repro.core import transpile
from repro.evaluation import format_depth_table, run_table_experiment
from repro.hardware import montreal_coupling_map

from bench_config import SEEDS, save_report, selected_table_cases


@pytest.fixture(scope="module")
def table2():
    result = run_table_experiment("montreal", cases=selected_table_cases(), seeds=SEEDS)
    report = format_depth_table(result)
    print("\n" + report)
    save_report("table2_montreal_depth.txt", report)
    from repro.evaluation import depth_table_to_csv

    save_report("table2_montreal_depth.csv", depth_table_to_csv(result))
    return result


def test_table2_report(table2):
    """Regenerate the Table II rows.

    The paper reports a modest average depth reduction (6.05% total / 7.61% added) with a few
    benchmarks regressing because re-synthesis adds single-qubit gates; we therefore only
    require that NASSC does not blow depth up across the board.
    """
    assert table2.rows
    better_or_close = sum(
        1 for row in table2.rows if row.nassc_depth <= 1.3 * row.sabre_depth
    )
    assert better_or_close >= 0.6 * len(table2.rows)


def test_table2_depths_exceed_original(table2):
    for row in table2.rows:
        assert row.sabre_depth >= row.original_depth * 0.9
        assert row.nassc_depth >= row.original_depth * 0.9


@pytest.mark.benchmark(group="table2-depth")
def test_depth_measurement_speed(benchmark, table2):
    """Micro-benchmark of the depth metric itself on a routed circuit."""
    circuit = get_benchmark("qft_n15")
    routed = transpile(circuit, montreal_coupling_map(), routing="nassc", seed=0).circuit
    depth = benchmark(routed.depth)
    assert depth > 0

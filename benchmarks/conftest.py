"""Pytest configuration for the benchmark harness (see bench_config.py for settings)."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

"""Perf smoke gate: fail when mean transpile wall-time regresses past a threshold.

Compares a freshly generated pipeline-benchmark report against the committed
``BENCH_transpile.json`` trajectory.  Only rows present in *both* reports — matched on
``(device, benchmark, routing)`` — are compared, so the ``REPRO_BENCH_SMOKE=1`` subset CI
runs is gated against the corresponding rows of the committed full grid.

Exit code 1 on regression.  Usage (what the CI perf-smoke job runs)::

    REPRO_BENCH_SMOKE=1 python -m pytest benchmarks/test_pass_pipeline.py -q --benchmark-disable
    python benchmarks/check_perf_regression.py \
        --report benchmarks/results/bench_transpile_smoke.json \
        --baseline BENCH_transpile.json --max-ratio 1.25
"""

import argparse
import json
import sys


def load_block(path, block):
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if block not in data:
        raise SystemExit(f"{path} has no '{block}' block")
    rows = {
        (row["device"], row["benchmark"], row["routing"]): row
        for row in data[block]["rows"]
    }
    return rows, data[block].get("calibration_seconds")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--report", required=True,
                        help="freshly generated report JSON (uses its 'current' block)")
    parser.add_argument("--baseline", default="BENCH_transpile.json",
                        help="committed trajectory JSON (uses its 'current' block, i.e. "
                             "the numbers recorded when the trajectory was last updated)")
    parser.add_argument("--baseline-block", default="current", choices=["current", "baseline"],
                        help="which block of the committed trajectory to gate against")
    parser.add_argument("--max-ratio", type=float, default=1.25,
                        help="fail when fresh mean exceeds committed mean by this factor")
    parser.add_argument("--metric", default="wall_time_median",
                        choices=["wall_time_median", "wall_time_mean"],
                        help="per-row statistic to aggregate (median is robust to the "
                             "cold-cache first repeat; run with REPRO_BENCH_REPEATS>=3)")
    args = parser.parse_args(argv)

    fresh, fresh_cal = load_block(args.report, "current")
    committed, committed_cal = load_block(args.baseline, args.baseline_block)
    shared = sorted(set(fresh) & set(committed))
    if not shared:
        raise SystemExit("no comparable (device, benchmark, routing) rows between reports")

    # Rescale the committed numbers by relative machine speed: both reports embed the
    # same deterministic CPU probe, so committed * (fresh_cal / committed_cal) is what
    # the committed run would have measured on THIS machine.  Without calibration data
    # the comparison falls back to raw wall-times (same-machine assumption).
    scale = 1.0
    if fresh_cal and committed_cal:
        scale = fresh_cal / committed_cal
        print(f"machine calibration: committed {committed_cal:.4f}s, fresh {fresh_cal:.4f}s "
              f"-> scaling committed wall-times by {scale:.3f}")

    fresh_mean = sum(fresh[key][args.metric] for key in shared) / len(shared)
    committed_mean = scale * sum(committed[key][args.metric] for key in shared) / len(shared)
    ratio = fresh_mean / committed_mean if committed_mean > 0 else float("inf")

    print(f"compared {len(shared)} case(s):")
    for key in shared:
        print(f"  {'|'.join(key):40s} {scale * committed[key][args.metric]:.4f}s -> "
              f"{fresh[key][args.metric]:.4f}s")
    print(f"mean of per-case {args.metric}: committed {committed_mean:.4f}s, "
          f"fresh {fresh_mean:.4f}s, ratio {ratio:.3f} (max allowed {args.max_ratio})")

    if ratio > args.max_ratio:
        print("PERF REGRESSION: mean transpile wall-time exceeded the allowed ratio",
              file=sys.stderr)
        return 1
    print("perf smoke gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

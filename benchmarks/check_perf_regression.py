"""Perf smoke gate: fail when mean transpile wall-time regresses past a threshold.

Compares a freshly generated pipeline-benchmark report against the committed
``BENCH_transpile.json`` trajectory.  Only rows present in *both* reports — matched on
``(device, benchmark, routing)`` — are compared, so the ``REPRO_BENCH_SMOKE=1`` subset CI
runs is gated against the corresponding rows of the committed full grid.

Exit code 1 on regression.  Usage (what the CI perf-smoke job runs)::

    REPRO_BENCH_SMOKE=1 python -m pytest benchmarks/test_pass_pipeline.py -q --benchmark-disable
    python benchmarks/check_perf_regression.py \
        --report benchmarks/results/bench_transpile_smoke.json \
        --baseline BENCH_transpile.json --max-ratio 1.25

A second mode gates best-of-N ensemble routing: ``--best-of-report PATH`` reads the
``best_of_summary`` block the pipeline benchmark embeds and fails when best-of-N costs
more than ``--max-best-of-ratio`` (default 2.5x) aggregate wall-time over single-trial
rows, or (with >= 10 comparable cases) fails to improve the routed CX count on a strict
majority of sabre/nassc cases.

A third, self-contained mode gates the observability layer itself::

    python benchmarks/check_perf_regression.py --trace-overhead --max-trace-ratio 1.05

It transpiles a benchmark circuit in adjacent untraced/traced pairs in one process and
gates on the **median of per-pair ratios**.  Pairing matters: wall-times drift by >10%
within a single process (allocator state, CPU frequency, container neighbours), so
medians of two independent arms cannot resolve a 5% overhead — the ratio of two
back-to-back runs can.  The workload uses ``routing="none"``: the SABRE path is
seed/history-sensitive enough that the two arms would compile genuinely different
amounts of work, polluting the comparison with routing variance.  The check passes if
**any** of ``--trace-rounds`` independent rounds lands at or under the threshold:
measured tracing overhead sits near 3% and shared-runner noise is one-sided (slow
bursts), so a single round can spuriously exceed 5%, but a genuine >5% regression
shifts every round's median and fails all of them.
"""

import argparse
import json
import os
import statistics
import sys
import time


def _import_repro():
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(
            0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
        )
    import repro  # noqa: F811
    return repro


def run_trace_overhead(max_ratio: float, repeats: int, qubits: int, rounds: int) -> int:
    """Traced-vs-untraced transpile overhead gate (see module docstring)."""
    _import_repro()
    from repro import Target, Tracer, use_tracer
    from repro.benchlib.qft import qft
    from repro.core.pipeline import transpile

    target = Target.from_topology("linear", qubits)

    def one_run(traced: bool) -> float:
        circuit = qft(qubits)
        start = time.perf_counter()
        if traced:
            with use_tracer(Tracer()):
                transpile(circuit, target, level="O1", routing="none")
        else:
            transpile(circuit, target, level="O1", routing="none")
        return time.perf_counter() - start

    # Warm every process-global cache (gate matrices, KAK memo, commutation) before
    # timing anything, then measure adjacent untraced/traced pairs.
    one_run(False)
    one_run(True)
    round_medians = []
    for round_index in range(rounds):
        ratios, untraced_times, traced_times = [], [], []
        for _ in range(repeats):
            untraced = one_run(False)
            traced = one_run(True)
            untraced_times.append(untraced)
            traced_times.append(traced)
            ratios.append(traced / untraced if untraced > 0 else float("inf"))
        ratio = statistics.median(ratios)
        round_medians.append(ratio)
        print(f"trace overhead round {round_index + 1}/{rounds}: "
              f"untraced median {statistics.median(untraced_times) * 1000:.2f} ms, "
              f"traced median {statistics.median(traced_times) * 1000:.2f} ms over "
              f"{repeats} pairs (qft{qubits} routing=none, median pair ratio "
              f"{ratio:.3f}, max allowed {max_ratio})")
        if ratio <= max_ratio:
            print("trace overhead gate passed")
            return 0
    print(f"TRACE OVERHEAD REGRESSION: every round exceeded the allowed ratio "
          f"(medians: {', '.join(f'{r:.3f}' for r in round_medians)})",
          file=sys.stderr)
    return 1


def run_best_of_gate(path: str, max_ratio: float, block: str = "current") -> int:
    """Best-of-N quality/cost gate on a report's ``best_of_summary`` block.

    Fails when the aggregate wall-time ratio (total best-of-N wall-time over total
    single-trial wall-time — robust against the per-case ratio noise of sub-50ms
    rows) exceeds ``max_ratio``, or when (with at least 10 comparable cases)
    best-of-N fails to improve the routed CX count on a strict majority of
    sabre/nassc cases.
    """
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if block not in data:
        raise SystemExit(f"{path} has no '{block}' block")
    summary = data[block].get("best_of_summary")
    if not summary:
        raise SystemExit(
            f"{path} has no best_of_summary — regenerate with REPRO_BENCH_BEST_OF>=2"
        )
    aggregate = summary["aggregate_wall_ratio"]
    print(f"best-of-{summary['best_of']} gate over {summary['cases']} cases: "
          f"{summary['improved']} improved / {summary['tied']} tied / "
          f"{summary['worse']} worse; wall ratio aggregate {aggregate:.2f}x, "
          f"mean {summary['mean_wall_ratio']:.2f}x (max allowed {max_ratio}x aggregate)")
    failed = False
    if aggregate > max_ratio:
        print(f"BEST-OF REGRESSION: aggregate wall-time ratio {aggregate:.2f}x "
              f"exceeds {max_ratio}x", file=sys.stderr)
        failed = True
    if summary["cases"] >= 10 and summary["improved"] <= summary["cases"] // 2:
        print(f"BEST-OF REGRESSION: improved only {summary['improved']} of "
              f"{summary['cases']} cases (strict majority required)", file=sys.stderr)
        failed = True
    elif summary["cases"] < 10:
        print("fewer than 10 comparable cases — majority criterion skipped "
              "(wall-time budget still enforced)")
    if failed:
        return 1
    print("best-of gate passed")
    return 0


def load_block(path, block):
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if block not in data:
        raise SystemExit(f"{path} has no '{block}' block")
    rows = {
        (row["device"], row["benchmark"], row["routing"]): row
        for row in data[block]["rows"]
    }
    return rows, data[block].get("calibration_seconds")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--report",
                        help="freshly generated report JSON (uses its 'current' block)")
    parser.add_argument("--trace-overhead", action="store_true",
                        help="run the self-contained traced-vs-untraced overhead gate "
                             "instead of the report comparison")
    parser.add_argument("--max-trace-ratio", type=float, default=1.05,
                        help="fail when the median traced/untraced pair ratio exceeds "
                             "this factor (default: 1.05)")
    parser.add_argument("--trace-repeats", type=int, default=11,
                        help="untraced/traced pairs timed in --trace-overhead mode "
                             "(default: 11)")
    parser.add_argument("--trace-qubits", type=int, default=10,
                        help="QFT width used by --trace-overhead (default: 10)")
    parser.add_argument("--trace-rounds", type=int, default=3,
                        help="independent rounds in --trace-overhead mode; the gate "
                             "passes if any round meets the threshold (default: 3)")
    parser.add_argument("--baseline", default="BENCH_transpile.json",
                        help="committed trajectory JSON (uses its 'current' block, i.e. "
                             "the numbers recorded when the trajectory was last updated)")
    parser.add_argument("--baseline-block", default="current", choices=["current", "baseline"],
                        help="which block of the committed trajectory to gate against")
    parser.add_argument("--max-ratio", type=float, default=1.25,
                        help="fail when fresh mean exceeds committed mean by this factor")
    parser.add_argument("--metric", default="wall_time_median",
                        choices=["wall_time_median", "wall_time_mean"],
                        help="per-row statistic to aggregate (median is robust to the "
                             "cold-cache first repeat; run with REPRO_BENCH_REPEATS>=3)")
    parser.add_argument("--best-of-report", metavar="PATH",
                        help="gate the best_of_summary block of this report instead of "
                             "comparing wall-times against the committed trajectory")
    parser.add_argument("--max-best-of-ratio", type=float, default=2.5,
                        help="fail when best-of-N mean wall-time exceeds single-trial "
                             "by this factor (default: 2.5)")
    parser.add_argument("--best-of-block", default="current",
                        help="report block holding the best_of_summary (default: current)")
    args = parser.parse_args(argv)

    if args.trace_overhead:
        return run_trace_overhead(args.max_trace_ratio, args.trace_repeats,
                                  args.trace_qubits, args.trace_rounds)
    if args.best_of_report:
        return run_best_of_gate(args.best_of_report, args.max_best_of_ratio,
                                args.best_of_block)
    if not args.report:
        parser.error("--report is required (or pass --trace-overhead)")

    fresh, fresh_cal = load_block(args.report, "current")
    committed, committed_cal = load_block(args.baseline, args.baseline_block)
    shared = sorted(set(fresh) & set(committed))
    if not shared:
        raise SystemExit("no comparable (device, benchmark, routing) rows between reports")

    # Rescale the committed numbers by relative machine speed: both reports embed the
    # same deterministic CPU probe, so committed * (fresh_cal / committed_cal) is what
    # the committed run would have measured on THIS machine.  Without calibration data
    # the comparison falls back to raw wall-times (same-machine assumption).
    scale = 1.0
    if fresh_cal and committed_cal:
        scale = fresh_cal / committed_cal
        print(f"machine calibration: committed {committed_cal:.4f}s, fresh {fresh_cal:.4f}s "
              f"-> scaling committed wall-times by {scale:.3f}")

    fresh_mean = sum(fresh[key][args.metric] for key in shared) / len(shared)
    committed_mean = scale * sum(committed[key][args.metric] for key in shared) / len(shared)
    ratio = fresh_mean / committed_mean if committed_mean > 0 else float("inf")

    print(f"compared {len(shared)} case(s):")
    for key in shared:
        print(f"  {'|'.join(key):40s} {scale * committed[key][args.metric]:.4f}s -> "
              f"{fresh[key][args.metric]:.4f}s")
    print(f"mean of per-case {args.metric}: committed {committed_mean:.4f}s, "
          f"fresh {fresh_mean:.4f}s, ratio {ratio:.3f} (max allowed {args.max_ratio})")

    if ratio > args.max_ratio:
        print("PERF REGRESSION: mean transpile wall-time exceeded the allowed ratio",
              file=sys.stderr)
        return 1
    print("perf smoke gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Shared configuration for the paper-reproduction benchmark harness.

Every file in this directory regenerates one table or figure of the paper.  By default a
reduced configuration is used (small/medium benchmarks, one routing seed, reduced shots) so
the whole harness completes in minutes on a laptop; set ``REPRO_BENCH_FULL=1`` to run the
full benchmark list of Tables I-IV (including the large RevLib-style circuits) with more
seeds, which takes a few hours — comparable to the original artifact's 10-12 hour run.
"""

import os

import pytest

from repro.benchlib import table_benchmarks

FULL = os.environ.get("REPRO_BENCH_FULL", "0") not in ("0", "", "false")

#: Benchmarks used in the quick (default) configuration of the table experiments.
QUICK_TABLE_NAMES = [
    "grover_n4",
    "grover_n6",
    "vqe_n8",
    "bv_n19",
    "qft_n15",
    "qpe_n9",
    "adder_n10",
]

#: Benchmarks used for the Figure 9 ablation in the quick configuration.
QUICK_ABLATION_NAMES = ["grover_n4", "adder_n10"]

SEEDS = (0, 1, 2) if FULL else (0,)
NOISE_SHOTS = 8192 if FULL else 2048
NOISE_REALIZATIONS = 256 if FULL else 64


def selected_table_cases():
    if FULL:
        return table_benchmarks()
    return table_benchmarks(names=QUICK_TABLE_NAMES)


def selected_ablation_cases():
    if FULL:
        return table_benchmarks(names=QUICK_TABLE_NAMES)
    return table_benchmarks(names=QUICK_ABLATION_NAMES)


@pytest.fixture(scope="session")
def seeds():
    return SEEDS


RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_report(name: str, text: str) -> str:
    """Persist a regenerated table/figure report under ``benchmarks/results/``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    return path

"""Online server throughput: sustained jobs/sec over HTTP vs. the offline batch path.

Boots a real :class:`repro.server.ReproServer` on an ephemeral port (thread pool — the
comparison isolates the HTTP/queue/event-loop overhead, not fork cost), pushes the same
job batch through (a) the offline :class:`BatchTranspiler` and (b) concurrent HTTP
clients, and reports cold and warm-cache rates for both paths.  Results go to
``benchmarks/results/server_throughput.{txt,json}``.

Smoke mode (``REPRO_BENCH_SMOKE=1``, used by CI) shrinks the batch to a few small jobs;
``REPRO_BENCH_FULL=1`` scales it up.
"""

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import ReproClient, Target, TranspileJob, TranspileOptions
from repro.benchlib import table_benchmarks
from repro.server import ReproServer
from repro.service import BatchTranspiler, ResultCache

from bench_config import FULL, RESULTS_DIR, save_report

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") not in ("0", "", "false")
BATCH_NAMES = (
    ["grover_n4"] if SMOKE
    else (["grover_n4", "grover_n6", "vqe_n8", "qpe_n9", "adder_n10"] if FULL
          else ["grover_n4", "vqe_n8", "adder_n10"])
)
BATCH_SEEDS = (0,) if SMOKE else ((0, 1, 2) if FULL else (0, 1))
WORKERS = 2 if SMOKE else 4
CLIENT_THREADS = 2 if SMOKE else 4


def build_jobs():
    target = Target.from_topology("linear", 25)
    jobs = []
    for case in table_benchmarks(names=BATCH_NAMES):
        circuit = case.build()
        for routing in ("sabre", "nassc"):
            for seed in BATCH_SEEDS:
                jobs.append(
                    TranspileJob.from_circuit(
                        circuit, target, TranspileOptions(routing=routing, seed=seed),
                        name=f"{case.name}[{routing},s{seed}]",
                    )
                )
    return jobs


def drive_server(url: str, jobs) -> float:
    """Submit every job from concurrent client threads and wait for all results."""

    def one(job):
        client = ReproClient(url, timeout=600.0)
        return client.submit_job(job).result(timeout=600.0)

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=CLIENT_THREADS) as pool:
        results = list(pool.map(one, jobs))
    elapsed = time.perf_counter() - start
    assert len(results) == len(jobs)
    return len(jobs) / elapsed


@pytest.fixture(scope="module")
def jobs():
    return build_jobs()


@pytest.fixture(scope="module")
def throughput_report(jobs):
    lines = [f"Server vs offline throughput ({len(jobs)} jobs, linear_25, {WORKERS} workers)"]
    rates = {}

    executor = BatchTranspiler(max_workers=WORKERS, cache=ResultCache())
    start = time.perf_counter()
    outcomes = executor.run(jobs)
    rates["offline_cold"] = len(jobs) / (time.perf_counter() - start)
    assert all(outcome.ok for outcome in outcomes)
    start = time.perf_counter()
    executor.run(jobs)
    rates["offline_warm"] = len(jobs) / (time.perf_counter() - start)

    server = ReproServer(port=0, use_processes=False, max_workers=WORKERS)
    with server.run_in_thread() as handle:
        rates["server_cold"] = drive_server(handle.url, jobs)
        rates["server_warm"] = drive_server(handle.url, jobs)
        health = handle.client().healthz()
        assert health["status"] == "ok"

    for key in ("offline_cold", "server_cold", "offline_warm", "server_warm"):
        lines.append(f"{key:13s}: {rates[key]:8.2f} jobs/sec")
    lines.append(
        f"HTTP overhead (cold): {rates['offline_cold'] / rates['server_cold']:.2f}x offline rate"
    )
    report = "\n".join(lines)
    print("\n" + report)
    save_report("server_throughput.txt", report)
    payload = {"smoke": SMOKE, "full": FULL, "jobs": len(jobs), "workers": WORKERS,
               "client_threads": CLIENT_THREADS, "rates": rates}
    with open(os.path.join(RESULTS_DIR, "server_throughput.json"), "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2)
    return rates


def test_all_paths_complete(throughput_report):
    assert set(throughput_report) == {
        "offline_cold", "offline_warm", "server_cold", "server_warm"
    }


def test_warm_server_is_served_from_cache(throughput_report):
    """A warm rerun through HTTP must beat the cold run (cache fast path end to end)."""
    assert throughput_report["server_warm"] > throughput_report["server_cold"]


def test_http_overhead_is_bounded(throughput_report):
    """The online path must sustain at least a tenth of the offline cold rate."""
    assert throughput_report["server_cold"] > 0.1 * throughput_report["offline_cold"]

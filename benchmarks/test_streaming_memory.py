"""Streaming-transpilation benchmarks: peak-memory scaling and wall-time parity.

Two tracked properties of :func:`repro.transpile_stream`:

* **Peak memory is O(window), not O(gates).**  Each measured size runs in its own
  subprocess (``python benchmarks/test_streaming_memory.py --measure GATES QUBITS
  WINDOW``) so the OS-level high-water mark (``ru_maxrss``) is an honest per-run
  number, alongside the allocator-level ``tracemalloc`` peak.  The gate: a 10x
  increase in gate count may grow peak memory by at most 3x — the sublinear-growth
  criterion from the streaming acceptance list.  The full configuration
  (``REPRO_BENCH_FULL=1``) measures the headline 100k- vs 1M-gate pair; the default
  sizes keep the same 10x-gates/3x-memory shape but finish in seconds so the check
  runs inside tier-1 and CI smoke.

* **Whole-window streaming does not regress wall time.**  Every evaluation-grid
  device x benchmark case is routed both ways at the streamable configuration
  (level O0, ``layout_iterations=0``, seed 0) — in-memory ``transpile()`` +
  ``qasm.dumps`` versus ``transpile_stream`` with a window covering the circuit —
  and the aggregate streaming/in-memory ratio must stay <= 1.05.  ``routing="none"``
  has no per-run router and cannot stream, so the grid covers the routed methods.

Full runs record both trajectories into the ``streaming`` block of the repo-root
``BENCH_transpile.json``; smoke/default runs write to
``benchmarks/results/bench_streaming_smoke.json`` so a quick run never clobbers the
committed numbers.
"""

import json
import os
import statistics
import subprocess
import sys
import time

import pytest

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
SRC_DIR = os.path.join(REPO_ROOT, "src")
if __name__ == "__main__":  # --measure subprocess: no pytest, no conftest sys.path help
    sys.path.insert(0, SRC_DIR)
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro import Target, TranspileOptions, stream_to, transpile, transpile_stream
from repro.benchlib import table_benchmarks
from repro.circuit import qasm
from repro.core.stream import DEFAULT_WINDOW_GATES
from repro.hardware import evaluation_devices

from bench_config import QUICK_TABLE_NAMES, RESULTS_DIR, save_report

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") not in ("0", "", "false")
FULL = os.environ.get("REPRO_BENCH_FULL", "0") not in ("0", "", "false")

#: Gate-count pair for the memory trajectory: the second size is 10x the first, and
#: the sublinear gate requires peak memory to grow at most 3x between them.
MEM_GATE_SIZES = (100_000, 1_000_000) if FULL else (2_000, 20_000)
#: Window for the memory runs.  The reduced sizes shrink the window too, so both
#: measured sizes are well past saturation (live gates pinned at the window spill
#: allowance) and the comparison probes the steady state, not the fill phase.
MEM_WINDOW = DEFAULT_WINDOW_GATES if FULL else 256
MEM_QUBITS = 20
MEM_SEED = 0

#: Memory growth gate: 10x the gates may cost at most this factor in peak memory.
SUBLINEAR_LIMIT = 3.0
#: Wall-time gate: whole-window streaming within 5% of the in-memory path.
WALL_RATIO_LIMIT = 1.05

RATIO_NAMES = [QUICK_TABLE_NAMES[0]] if SMOKE else QUICK_TABLE_NAMES
RATIO_METHODS = ("sabre", "nassc")
RATIO_SEED = 0
RATIO_REPEATS = max(2, int(os.environ.get("REPRO_BENCH_REPEATS", "2")))

TRAJECTORY_PATH = os.path.join(REPO_ROOT, "BENCH_transpile.json")
SMOKE_REPORT_PATH = os.path.join(RESULTS_DIR, "bench_streaming_smoke.json")


class _CountingSink:
    """Discards routed chunks while keeping the line/byte totals for the report."""

    def __init__(self):
        self.lines = 0
        self.bytes = 0

    def write(self, chunk: str) -> None:
        self.lines += chunk.count("\n")
        self.bytes += len(chunk)


def measure_streaming_memory(gates: int, qubits: int, window: int) -> dict:
    """One memory data point: stream ``gates`` random gates, report the peaks.

    Run inside a fresh subprocess per size so ``ru_maxrss`` (the process-lifetime
    RSS high-water mark) reflects this run alone.
    """
    import resource
    import tracemalloc

    from repro.circuit.random import random_circuit_stream

    target = Target.from_topology("grid", 25)
    sink = _CountingSink()
    source = random_circuit_stream(qubits, gates, seed=MEM_SEED)
    tracemalloc.start()
    start = time.perf_counter()
    summary = stream_to(
        transpile_stream(
            source, target, num_qubits=qubits,
            routing="sabre", seed=MEM_SEED, window_gates=window,
        ),
        sink,
    )
    wall = time.perf_counter() - start
    _, traced_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return {
        "gates": gates,
        "qubits": qubits,
        "window_gates": window,
        "emitted_gates": summary["emitted_gates"],
        "num_swaps": summary["num_swaps"],
        "emitted_lines": sink.lines,
        "emitted_bytes": sink.bytes,
        "wall_seconds": wall,
        "gates_per_second": gates / wall if wall > 0 else 0.0,
        "peak_traced_bytes": traced_peak,
        "peak_rss_kb": rss_kb,
    }


@pytest.fixture(scope="module")
def memory_trajectory():
    """Per-size subprocess measurements, smallest first."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    rows = []
    for gates in MEM_GATE_SIZES:
        proc = subprocess.run(
            [sys.executable, os.path.abspath(__file__), "--measure",
             str(gates), str(MEM_QUBITS), str(MEM_WINDOW)],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT,
        )
        assert proc.returncode == 0, (
            f"--measure {gates} subprocess failed:\n{proc.stdout}\n{proc.stderr}"
        )
        rows.append(json.loads(proc.stdout))
    return rows


def _memory_summary(rows):
    small, large = rows[0], rows[-1]
    return {
        "rows": rows,
        "gate_ratio": large["gates"] / small["gates"],
        "peak_traced_ratio": large["peak_traced_bytes"] / max(small["peak_traced_bytes"], 1),
        "peak_rss_ratio": large["peak_rss_kb"] / max(small["peak_rss_kb"], 1),
        "sublinear_limit": SUBLINEAR_LIMIT,
    }


@pytest.fixture(scope="module")
def wall_ratio_summary():
    """Streaming-vs-in-memory wall time over the evaluation grid at whole window.

    Both paths produce routed OpenQASM text end to end; per-case times are the best
    of ``RATIO_REPEATS`` alternated runs so allocator warm-up hits both sides.
    """
    cases = table_benchmarks(names=RATIO_NAMES)
    comparisons = []
    for device_name, coupling in evaluation_devices().items():
        target = Target(coupling_map=coupling, name=device_name)
        for case in cases:
            circuit = case.build()
            whole = max(10 * len(circuit.data), 1024)
            for routing in RATIO_METHODS:
                options = TranspileOptions(
                    routing=routing, level="O0", layout_iterations=0, seed=RATIO_SEED,
                )
                in_memory, streaming = [], []
                result = summary = None
                for _ in range(RATIO_REPEATS):
                    start = time.perf_counter()
                    result = transpile(circuit, target, options)
                    qasm.dumps(result.circuit)
                    in_memory.append(time.perf_counter() - start)
                    sink = _CountingSink()
                    start = time.perf_counter()
                    summary = stream_to(
                        transpile_stream(circuit, target, options=options,
                                         window_gates=whole),
                        sink,
                    )
                    streaming.append(time.perf_counter() - start)
                # Whole-window streaming makes the same routing decisions, so the
                # headline counts must agree (nassc's post-routing cleanup only
                # moves single-qubit gates; it changes neither).
                assert summary["num_swaps"] == result.num_swaps
                assert summary["cx_count"] == result.cx_count
                comparisons.append({
                    "device": device_name,
                    "benchmark": case.name,
                    "routing": routing,
                    "wall_in_memory": min(in_memory),
                    "wall_streaming": min(streaming),
                    "wall_ratio": min(streaming) / max(min(in_memory), 1e-12),
                    "num_swaps": result.num_swaps,
                })
    ratios = [c["wall_ratio"] for c in comparisons]
    return {
        "methods": list(RATIO_METHODS),
        "seed": RATIO_SEED,
        "repeats": RATIO_REPEATS,
        "cases": len(comparisons),
        # Like the best-of budget, the gate applies to the aggregate: sub-10ms cases
        # turn per-case ratios into a noise amplifier, while the aggregate weights
        # every case by the compute it actually consumed.
        "aggregate_wall_ratio": (
            sum(c["wall_streaming"] for c in comparisons)
            / max(sum(c["wall_in_memory"] for c in comparisons), 1e-12)
        ),
        "mean_wall_ratio": statistics.mean(ratios),
        "median_wall_ratio": statistics.median(ratios),
        "max_wall_ratio": max(ratios),
        "limit": WALL_RATIO_LIMIT,
        "comparisons": comparisons,
    }


@pytest.fixture(scope="module")
def streaming_report(memory_trajectory, wall_ratio_summary):
    """Assemble the streaming block, persist it, and update the tracked trajectory."""
    summary = {
        "suite": "streaming",
        "smoke": SMOKE,
        "full": FULL,
        "memory": _memory_summary(memory_trajectory),
        "wall_ratio": wall_ratio_summary,
    }
    if FULL:
        trajectory = {}
        if os.path.exists(TRAJECTORY_PATH):
            with open(TRAJECTORY_PATH, encoding="utf-8") as handle:
                trajectory = json.load(handle)
        trajectory["streaming"] = summary
        with open(TRAJECTORY_PATH, "w", encoding="utf-8") as handle:
            json.dump(trajectory, handle, indent=2)
            handle.write("\n")
    else:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        with open(SMOKE_REPORT_PATH, "w", encoding="utf-8") as handle:
            json.dump({"streaming": summary}, handle, indent=2)

    memory = summary["memory"]
    lines = [f"Streaming transpile (window {MEM_WINDOW}, {MEM_QUBITS} qubits)"]
    for row in memory["rows"]:
        lines.append(
            f"  {row['gates']:>9,} gates: traced peak "
            f"{row['peak_traced_bytes'] / 1e6:8.1f} MB, RSS peak "
            f"{row['peak_rss_kb'] / 1024:8.1f} MB, {row['wall_seconds']:7.1f}s "
            f"({row['gates_per_second']:,.0f} gates/s)"
        )
    lines.append(
        f"  {memory['gate_ratio']:.0f}x gates -> traced peak x"
        f"{memory['peak_traced_ratio']:.2f}, RSS x{memory['peak_rss_ratio']:.2f} "
        f"(limit x{memory['sublinear_limit']:.1f})"
    )
    ratio = summary["wall_ratio"]
    lines.append(
        f"whole-window streaming vs in-memory over {ratio['cases']} cases: aggregate "
        f"{ratio['aggregate_wall_ratio']:.2f}x, median {ratio['median_wall_ratio']:.2f}x, "
        f"max {ratio['max_wall_ratio']:.2f}x (limit {ratio['limit']:.2f}x)"
    )
    text = "\n".join(lines)
    print("\n" + text)
    save_report("streaming_memory.txt", text)
    return summary


def test_memory_rows_are_real_routed_runs(memory_trajectory):
    """Each data point streamed the requested gate count through the router."""
    for row in memory_trajectory:
        assert row["emitted_gates"] >= row["gates"]
        assert row["emitted_lines"] > row["gates"]
        assert row["num_swaps"] > 0
        assert row["peak_traced_bytes"] > 0
        assert row["peak_rss_kb"] > 0


def test_peak_memory_growth_is_sublinear(streaming_report):
    """The streaming acceptance gate: 10x the gates costs at most 3x the peak memory.

    Applied to both the allocator-level tracemalloc peak (tight: the live window
    dominates it) and the OS-level RSS high-water mark of each measuring subprocess.
    """
    memory = streaming_report["memory"]
    assert memory["gate_ratio"] >= 10.0
    assert memory["peak_traced_ratio"] <= SUBLINEAR_LIMIT, (
        f"traced peak grew x{memory['peak_traced_ratio']:.2f} for "
        f"x{memory['gate_ratio']:.0f} gates (limit x{SUBLINEAR_LIMIT})"
    )
    assert memory["peak_rss_ratio"] <= SUBLINEAR_LIMIT, (
        f"peak RSS grew x{memory['peak_rss_ratio']:.2f} for "
        f"x{memory['gate_ratio']:.0f} gates (limit x{SUBLINEAR_LIMIT})"
    )


def test_whole_window_streaming_is_not_slower(streaming_report):
    """Satellite gate: whole-window streaming within 5% of in-memory wall time."""
    ratio = streaming_report["wall_ratio"]
    assert ratio["cases"] == len(list(evaluation_devices())) * len(RATIO_NAMES) * len(RATIO_METHODS)
    assert ratio["aggregate_wall_ratio"] <= WALL_RATIO_LIMIT, (
        f"whole-window streaming costs x{ratio['aggregate_wall_ratio']:.3f} of the "
        f"in-memory path (limit x{WALL_RATIO_LIMIT})"
    )


def test_streaming_report_written(streaming_report):
    path = TRAJECTORY_PATH if FULL else SMOKE_REPORT_PATH
    with open(path, encoding="utf-8") as handle:
        recorded = json.load(handle)["streaming"]
    assert recorded["memory"]["rows"]
    assert recorded["wall_ratio"]["cases"] > 0


if __name__ == "__main__":
    if len(sys.argv) == 5 and sys.argv[1] == "--measure":
        print(json.dumps(
            measure_streaming_memory(int(sys.argv[2]), int(sys.argv[3]), int(sys.argv[4]))
        ))
    else:
        print(f"usage: {sys.argv[0]} --measure GATES QUBITS WINDOW", file=sys.stderr)
        sys.exit(2)

"""Batch transpilation service throughput: jobs/sec, 1 vs N workers, cold vs warm cache.

Tracks the speedup of :class:`repro.service.BatchTranspiler` over serial in-process
transpilation so future PRs can measure regressions.  The quick configuration uses the
small table benchmarks; ``REPRO_BENCH_FULL=1`` scales the batch up.
"""

import time

import pytest

from repro.benchlib import table_benchmarks
from repro.hardware import linear_coupling_map
from repro.service import BatchTranspiler, ResultCache, TranspileJob

from bench_config import FULL, save_report

BATCH_NAMES = (
    ["grover_n4", "grover_n6", "vqe_n8", "qpe_n9", "adder_n10"]
    if FULL
    else ["grover_n4", "vqe_n8", "adder_n10"]
)
BATCH_SEEDS = (0, 1, 2) if FULL else (0, 1)
WORKER_COUNTS = (1, 2, 4)


def build_jobs():
    coupling = linear_coupling_map(25)
    jobs = []
    for case in table_benchmarks(names=BATCH_NAMES):
        circuit = case.build()
        for routing in ("sabre", "nassc"):
            for seed in BATCH_SEEDS:
                jobs.append(
                    TranspileJob.from_circuit(
                        circuit, coupling, routing=routing, seed=seed,
                        name=f"{case.name}[{routing},s{seed}]",
                    )
                )
    return jobs


@pytest.fixture(scope="module")
def jobs():
    return build_jobs()


@pytest.fixture(scope="module")
def throughput_report(jobs):
    """Measure cold jobs/sec at each worker count plus the warm-cache rate, once."""
    lines = [f"Batch transpiler throughput ({len(jobs)} jobs, linear_25)"]
    rates = {}
    for workers in WORKER_COUNTS:
        executor = BatchTranspiler(max_workers=workers, cache=ResultCache())
        start = time.perf_counter()
        outcomes = executor.run(jobs)
        elapsed = time.perf_counter() - start
        assert all(outcome.ok for outcome in outcomes)
        rates[workers] = len(jobs) / elapsed
        lines.append(f"cold, {workers} worker(s): {rates[workers]:8.2f} jobs/sec ({elapsed:.2f}s)")
        if workers == max(WORKER_COUNTS):
            start = time.perf_counter()
            warm = executor.run(jobs)
            elapsed = time.perf_counter() - start
            assert all(outcome.from_cache for outcome in warm)
            rates["warm"] = len(jobs) / elapsed
            lines.append(f"warm cache:        {rates['warm']:8.2f} jobs/sec ({elapsed:.2f}s)")
    report = "\n".join(lines)
    print("\n" + report)
    save_report("batch_throughput.txt", report)
    return rates


def test_all_worker_counts_complete(throughput_report):
    assert set(WORKER_COUNTS) <= set(throughput_report)


def test_warm_cache_is_fastest(throughput_report):
    """Serving a batch from the content-addressed cache must beat recomputing it."""
    assert throughput_report["warm"] > max(throughput_report[w] for w in WORKER_COUNTS)


def test_parallel_not_slower_than_half_serial(throughput_report):
    """Fan-out overhead must never cost more than 2x on this batch size."""
    assert throughput_report[max(WORKER_COUNTS)] > 0.5 * throughput_report[1]


@pytest.mark.benchmark(group="batch-throughput")
def test_single_job_service_overhead(benchmark, jobs):
    """Fingerprint + cache + serialisation overhead on a warm single-job run."""
    executor = BatchTranspiler(max_workers=1)
    executor.run([jobs[0]])  # prime the cache
    outcome = benchmark(lambda: executor.run_one(jobs[0]))
    assert outcome.from_cache

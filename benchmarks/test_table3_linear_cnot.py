"""Table III: additional CNOT gates of NASSC vs Qiskit+SABRE on the 25-qubit linear topology."""

import pytest

from repro.benchlib import get_benchmark
from repro.core import transpile
from repro.evaluation import format_cnot_table, run_table_experiment
from repro.hardware import linear_coupling_map

from bench_config import SEEDS, save_report, selected_table_cases


@pytest.fixture(scope="module")
def table3():
    result = run_table_experiment(
        "linear", cases=selected_table_cases(), seeds=SEEDS, num_device_qubits=25
    )
    report = format_cnot_table(result)
    print("\n" + report)
    save_report("table3_linear_cnot.txt", report)
    return result


def test_table3_report(table3):
    """NASSC should reduce added CNOTs on the linear chain (paper: 34.65% geometric mean)."""
    assert table3.rows
    assert table3.geomean_delta_cx_added > 0


def test_table3_linear_needs_more_swaps_than_montreal(table3):
    """The linear chain has the worst connectivity, so routing overhead should be the largest
    of the three topologies for most benchmarks (paper Sec. VI-C)."""
    from repro.evaluation import run_table_experiment as run

    montreal = run("montreal", cases=selected_table_cases()[:3], seeds=(SEEDS[0],))
    by_name = {row.name: row for row in montreal.rows}
    worse = 0
    comparable = 0
    for row in table3.rows:
        if row.name in by_name:
            comparable += 1
            if row.sabre_added_cx >= 0.8 * by_name[row.name].sabre_added_cx:
                worse += 1
    assert comparable == 0 or worse >= comparable / 2


@pytest.mark.benchmark(group="table3-linear")
@pytest.mark.parametrize("routing", ["sabre", "nassc"])
def test_routing_speed_vqe_n8(benchmark, routing, table3):
    circuit = get_benchmark("vqe_n8")
    coupling = linear_coupling_map(25)
    result = benchmark(lambda: transpile(circuit, coupling, routing=routing, seed=0))
    assert result.cx_count > 0

"""Table I: additional CNOT gates of NASSC vs Qiskit+SABRE on ``ibmq_montreal``."""

import pytest

from repro.benchlib import get_benchmark
from repro.core import transpile
from repro.evaluation import format_cnot_table, run_table_experiment
from repro.hardware import montreal_coupling_map

from bench_config import SEEDS, save_report, selected_table_cases


@pytest.fixture(scope="module")
def table1():
    result = run_table_experiment("montreal", cases=selected_table_cases(), seeds=SEEDS)
    report = format_cnot_table(result)
    print("\n" + report)
    save_report("table1_montreal_cnot.txt", report)
    from repro.evaluation import cnot_table_to_csv

    save_report("table1_montreal_cnot.csv", cnot_table_to_csv(result))
    return result


def test_table1_report(table1):
    """Regenerate the Table I rows and check the paper's headline shape.

    NASSC should add fewer CNOTs than SABRE in aggregate (the paper reports a 21.30%
    geometric-mean reduction in added CNOTs on this topology).
    """
    assert table1.rows
    assert table1.geomean_delta_cx_added > 0
    wins = sum(1 for row in table1.rows if row.nassc_added_cx <= row.sabre_added_cx)
    assert wins >= len(table1.rows) / 2


def test_table1_transpile_time_ratio(table1):
    """NASSC's transpile time should stay within a small factor of SABRE (paper: ~1.0-1.7x)."""
    assert table1.geomean_time_ratio < 6.0


@pytest.mark.benchmark(group="table1-montreal")
@pytest.mark.parametrize("routing", ["sabre", "nassc"])
def test_routing_speed_grover_n6(benchmark, routing, table1):
    """Wall-clock comparison of the two routing pipelines on one medium benchmark."""
    circuit = get_benchmark("grover_n6")
    coupling = montreal_coupling_map()
    result = benchmark(lambda: transpile(circuit, coupling, routing=routing, seed=0))
    assert result.cx_count > 0

"""Table IV: additional CNOT gates of NASSC vs Qiskit+SABRE on the 5x5 grid topology."""

import pytest

from repro.benchlib import get_benchmark
from repro.core import transpile
from repro.evaluation import format_cnot_table, run_table_experiment
from repro.hardware import grid_coupling_map

from bench_config import SEEDS, save_report, selected_table_cases


@pytest.fixture(scope="module")
def table4():
    result = run_table_experiment("grid", cases=selected_table_cases(), seeds=SEEDS)
    report = format_cnot_table(result)
    print("\n" + report)
    save_report("table4_grid_cnot.txt", report)
    return result


def test_table4_report(table4):
    """NASSC should reduce added CNOTs on the 5x5 grid (paper: 28.10% geometric mean)."""
    assert table4.rows
    assert table4.geomean_delta_cx_added > 0
    wins = sum(1 for row in table4.rows if row.nassc_added_cx <= row.sabre_added_cx)
    assert wins >= len(table4.rows) / 2


@pytest.mark.benchmark(group="table4-grid")
@pytest.mark.parametrize("routing", ["sabre", "nassc"])
def test_routing_speed_adder_n10(benchmark, routing, table4):
    circuit = get_benchmark("adder_n10")
    coupling = grid_coupling_map(5, 5)
    result = benchmark(lambda: transpile(circuit, coupling, routing=routing, seed=0))
    assert result.cx_count > 0

"""Quickstart: compile a circuit for a real device topology with SABRE and NASSC routing.

The compile API is target-centric: a ``Target`` describes the device once, a
``TranspileOptions`` picks the routing method and preset optimization level, and
``transpile(circuit, target, options)`` does the rest.

Run with:  python examples/quickstart.py
"""

from repro import QuantumCircuit, Target, TranspileOptions, optimize_logical, transpile


def build_circuit() -> QuantumCircuit:
    """A small GHZ-plus-entangling-layer circuit that does not fit the device natively."""
    circuit = QuantumCircuit(6, name="quickstart")
    circuit.h(0)
    for target in range(1, 6):
        circuit.cx(0, target)
    for a in range(6):
        for b in range(a + 1, 6):
            circuit.cz(a, b)
    circuit.rz(0.25, 3)
    circuit.cx(5, 0)
    return circuit


def main() -> None:
    circuit = build_circuit()
    target = Target.from_topology("montreal")

    # Reference: the circuit optimized without any routing ("original circuit" in the paper).
    original = optimize_logical(circuit)
    print(f"original circuit:        {original.cx_count():4d} CNOTs, depth {original.depth()}")

    # The Qiskit+SABRE baseline and the paper's NASSC pipeline, averaged over a few seeds
    # (routing uses a seeded random tie-break, exactly as in the paper's 10-run averages).
    seeds = (0, 1, 2)
    for routing in ("sabre", "nassc"):
        results = [
            transpile(circuit, target, TranspileOptions(routing=routing, seed=seed, level="O1"))
            for seed in seeds
        ]
        mean_cx = sum(r.cx_count for r in results) / len(results)
        mean_depth = sum(r.depth for r in results) / len(results)
        mean_swaps = sum(r.num_swaps for r in results) / len(results)
        added = mean_cx - original.cx_count()
        print(
            f"routing={routing:5s}  total CNOTs {mean_cx:6.1f}  added {added:5.1f}  "
            f"depth {mean_depth:6.1f}  swaps {mean_swaps:4.1f}"
        )

    print("\nNASSC usually adds fewer CNOTs: not all SWAPs have the same cost.")
    print("For many circuits/seeds at once, see examples/batch_transpile.py and the")
    print("`python -m repro` CLI (parallel batch executor with result caching).")


if __name__ == "__main__":
    main()

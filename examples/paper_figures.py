"""Walk through the paper's motivating examples (Figures 1, 3 and 4) on the library.

Demonstrates, gate-by-gate, why "not all SWAPs have the same cost":
  * Figure 1  - two routing options with the same SWAP count but different CNOT cost;
  * Figure 3  - two-qubit block re-synthesis absorbs a SWAP into an adjacent block;
  * Figure 4  - commutation-aware SWAP decomposition lets a CNOT cancel.

Run with:  python examples/paper_figures.py
"""

import numpy as np

from repro import QuantumCircuit, cnot_count
from repro.transpiler import PassManager
from repro.transpiler.passes import CommutativeCancellation, SwapLowering, UnitarySynthesis


def figure1() -> None:
    print("=== Figure 1: two SWAP insertions, same SWAP count, different CNOT cost ===")
    # Logical workload: interactions (1,2), (0,1), (0,2) on a 0-1-2 line.
    def routed(swap_pair, last_pair):
        circuit = QuantumCircuit(3)
        circuit.crx(0.7, 1, 2)
        circuit.crx(0.9, 0, 1)
        circuit.swap(*swap_pair)
        circuit.crx(1.1, *last_pair)
        return circuit

    option_a = routed((0, 1), (1, 2))   # SWAP far from the previous (1,2) interaction
    option_b = routed((1, 2), (0, 1))   # SWAP adjacent to the previous (1,2) interaction
    optimizer = PassManager([SwapLowering(), UnitarySynthesis(), CommutativeCancellation(),
                             UnitarySynthesis()])
    for label, circuit in (("option (a): swap(0,1)", option_a), ("option (b): swap(1,2)", option_b)):
        optimized = optimizer.run(circuit.copy())
        print(f"  {label}: {optimized.cx_count()} CNOTs after optimization")
    print("  -> the SWAP that joins an existing two-qubit block is cheaper.\n")


def figure3() -> None:
    print("=== Figure 3: block re-synthesis reduces the cost of a SWAP ===")
    block = QuantumCircuit(2)
    block.cx(0, 1)
    block.rz(0.3, 1)
    swap = QuantumCircuit(2)
    swap.swap(0, 1)
    merged = swap.to_matrix() @ block.to_matrix()
    print(f"  block alone:        {cnot_count(block.to_matrix())} CNOTs")
    print(f"  block + SWAP (KAK): {cnot_count(merged)} CNOTs  (a standalone SWAP costs 3)")

    rng = np.random.default_rng(0)
    rich_block = QuantumCircuit(2)
    rich_block.cx(0, 1)
    rich_block.ry(rng.uniform(0.3, 1.0), 0)
    rich_block.rz(rng.uniform(0.3, 1.0), 1)
    rich_block.cx(1, 0)
    rich_block.rz(rng.uniform(0.3, 1.0), 0)
    rich_block.cx(0, 1)
    merged = swap.to_matrix() @ rich_block.to_matrix()
    print(f"  3-CNOT block + SWAP: {cnot_count(merged)} CNOTs  -> the SWAP is (almost) free\n")


def figure4() -> None:
    print("=== Figure 4: optimization-aware SWAP decomposition enables cancellation ===")
    for orientation, label in ((1, "optimization-aware (ctrl:1)"), (2, "fixed (ctrl:2)")):
        circuit = QuantumCircuit(3)
        circuit.cx(1, 2)
        circuit.cx(0, 2)
        circuit.swap(1, 2, label=f"ctrl:{orientation}")
        optimized = PassManager([SwapLowering(), CommutativeCancellation()]).run(circuit)
        print(f"  {label:28s}: {optimized.cx_count()} CNOTs after cancellation")
    print("  -> choosing the right control qubit for the SWAP's first CNOT saves two CNOTs.\n")


if __name__ == "__main__":
    figure1()
    figure3()
    figure4()

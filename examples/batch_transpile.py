"""Batch transpilation service: fan a job batch across workers with result caching.

Demonstrates the service layer (``repro.service``) above the single-call ``transpile()``
API used in ``quickstart.py``:

  * build serialisable ``TranspileJob`` specs (circuit + device + routing + seed),
  * run them through a ``BatchTranspiler`` process pool with a progress callback,
  * observe content-addressed caching: the warm rerun performs zero transpile calls.

Run with:  python examples/batch_transpile.py
"""

import os
import time

from repro import BatchTranspiler, Target, TranspileJob, TranspileOptions
from repro.benchlib import table_benchmarks

SMOKE = os.environ.get("REPRO_SMOKE") == "1"


def build_batch():
    """One job per (benchmark, routing, seed): the shape of a table regeneration."""
    target = Target.from_topology("linear", 25)
    names = ["grover_n4", "adder_n10"] if SMOKE else ["grover_n4", "vqe_n8", "adder_n10"]
    seeds = (0,) if SMOKE else (0, 1)
    jobs = []
    for case in table_benchmarks(names=names):
        circuit = case.build()
        for routing in ("sabre", "nassc"):
            for seed in seeds:
                jobs.append(
                    TranspileJob.from_circuit(
                        circuit, target, TranspileOptions(routing=routing, seed=seed),
                        name=f"{case.name}[{routing},seed{seed}]",
                    )
                )
    return jobs


def main() -> None:
    jobs = build_batch()
    print(f"submitting {len(jobs)} jobs to a 4-worker batch transpiler\n")
    executor = BatchTranspiler(max_workers=4)

    def progress(done, total, outcome):
        state = "cached" if outcome.from_cache else ("ok" if outcome.ok else "ERROR")
        print(f"  [{done:2d}/{total}] {outcome.job.name:28s} {state}")

    start = time.perf_counter()
    outcomes = executor.run(jobs, progress=progress)
    cold = time.perf_counter() - start
    print(f"\ncold batch: {cold:.2f}s ({len(jobs) / cold:.1f} jobs/sec)")

    for outcome in outcomes[:4]:
        result = outcome.result
        print(
            f"  {outcome.job.name:28s} cx={result.cx_count:4d} depth={result.depth:4d} "
            f"swaps={result.num_swaps:3d} fingerprint={outcome.fingerprint[:12]}"
        )

    # Identical jobs are content-addressed: the rerun is served entirely from cache.
    start = time.perf_counter()
    warm_outcomes = executor.run(jobs)
    warm = time.perf_counter() - start
    assert all(outcome.from_cache for outcome in warm_outcomes)
    stats = executor.stats
    print(f"warm batch: {warm:.3f}s -- all {len(jobs)} jobs from cache")
    print(f"cache stats: {stats.total_hits} hits / {stats.misses} misses "
          f"({stats.hit_rate:.0%} hit rate)")
    print("\nSame report, zero recomputation: try `python -m repro table --device linear"
          " --workers 4 --cache-dir ~/.cache/repro` twice.")


if __name__ == "__main__":
    main()

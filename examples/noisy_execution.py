"""NISQ execution study: route a small oracle circuit and estimate its success rate under a
realistic noise model (the paper's Figure 11 experiment).

Four routing variants are compared: SABRE, NASSC, and their noise-aware (+HA) versions that
use an error-rate-weighted distance matrix.

Run with:  python examples/noisy_execution.py
"""

from repro import fake_montreal_calibration, montreal_coupling_map, transpile
from repro.benchlib import bv_n5, grover_n4
from repro.core import optimize_logical
from repro.simulator import NoiseModel, NoisySimulator, StatevectorSimulator


def expected_outcome(circuit, measured):
    counts = StatevectorSimulator().sample_counts(
        circuit.without_directives(), 2048, seed=1, measured_qubits=measured
    )
    return max(counts, key=counts.get)


def main() -> None:
    coupling = montreal_coupling_map()
    calibration = fake_montreal_calibration()
    noise_model = NoiseModel.from_calibration(calibration)

    benchmarks = {
        "bv_n5 (data register)": (bv_n5(), list(range(4))),
        "grover_n4 (search register)": (grover_n4(), list(range(3))),
    }

    for name, (circuit, measured_logical) in benchmarks.items():
        print(f"\n=== {name} ===")
        original_cx = optimize_logical(circuit).cx_count()
        expected = expected_outcome(circuit, measured_logical)
        print(f"original CNOTs: {original_cx}, ideal outcome: {expected}")
        for method in ("sabre", "nassc", "sabre+HA", "nassc+HA"):
            routing = "sabre" if method.startswith("sabre") else "nassc"
            noise_aware = method.endswith("+HA")
            result = transpile(
                circuit, coupling, routing=routing, seed=0,
                noise_aware=noise_aware, calibration=calibration if noise_aware else None,
            )
            measured_physical = [result.final_layout.physical(q) for q in measured_logical]
            simulator = NoisySimulator(noise_model, realizations=128, seed=0)
            rate = simulator.success_rate(
                result.circuit, shots=4096, expected=expected, measured_qubits=measured_physical
            )
            print(
                f"  {method:9s} added CNOTs {result.cx_count - original_cx:3d}   "
                f"success rate {rate:.3f}"
            )

    print("\nFewer added CNOTs generally means less accumulated error and a higher success rate.")


if __name__ == "__main__":
    main()

"""NISQ execution study: route a small oracle circuit and estimate its success rate under a
realistic noise model (the paper's Figure 11 experiment).

Four routing variants are compared: SABRE, NASSC, and their noise-aware (+HA) versions
that use an error-rate-weighted distance matrix.  The calibrated device is described once
as a ``Target``; ``noise_aware=True`` in the options switches a method to its +HA variant.

Run with:  python examples/noisy_execution.py            (full study)
           REPRO_SMOKE=1 python examples/noisy_execution.py   (quick CI-sized run)
"""

import os

from repro import Target, TranspileOptions, fake_montreal_calibration, transpile
from repro.benchlib import bv_n5, grover_n4
from repro.core import optimize_logical
from repro.simulator import NoiseModel, NoisySimulator, StatevectorSimulator

SMOKE = os.environ.get("REPRO_SMOKE") == "1"


def expected_outcome(circuit, measured):
    counts = StatevectorSimulator().sample_counts(
        circuit.without_directives(), 2048, seed=1, measured_qubits=measured
    )
    return max(counts, key=counts.get)


def main() -> None:
    calibration = fake_montreal_calibration()
    target = Target(calibration=calibration)  # coupling map comes from the calibration
    noise_model = NoiseModel.from_calibration(calibration)
    realizations, shots = (16, 512) if SMOKE else (128, 4096)

    benchmarks = {
        "bv_n5 (data register)": (bv_n5(), list(range(4))),
        "grover_n4 (search register)": (grover_n4(), list(range(3))),
    }
    if SMOKE:
        benchmarks = dict(list(benchmarks.items())[:1])

    for name, (circuit, measured_logical) in benchmarks.items():
        print(f"\n=== {name} ===")
        original_cx = optimize_logical(circuit).cx_count()
        expected = expected_outcome(circuit, measured_logical)
        print(f"original CNOTs: {original_cx}, ideal outcome: {expected}")
        for routing in ("sabre", "nassc"):
            for noise_aware in (False, True):
                options = TranspileOptions(routing=routing, seed=0, noise_aware=noise_aware)
                result = transpile(circuit, target, options)
                label = routing + ("+HA" if noise_aware else "")
                measured_physical = [result.final_layout.physical(q) for q in measured_logical]
                simulator = NoisySimulator(noise_model, realizations=realizations, seed=0)
                rate = simulator.success_rate(
                    result.circuit, shots=shots, expected=expected,
                    measured_qubits=measured_physical,
                )
                print(
                    f"  {label:9s} added CNOTs {result.cx_count - original_cx:3d}   "
                    f"success rate {rate:.3f}"
                )

    print("\nFewer added CNOTs generally means less accumulated error and a higher success rate.")


if __name__ == "__main__":
    main()

"""Compile an OpenQASM circuit for a user-defined device.

Shows the full public-API workflow a downstream user would follow:
  1. load a circuit from OpenQASM 2.0 text,
  2. describe a custom device (coupling graph + synthetic calibration),
  3. compile with NASSC and inspect the result,
  4. verify the compiled circuit still respects the device connectivity.

Run with:  python examples/custom_device.py
"""

from repro import CouplingMap, synthetic_calibration, transpile
from repro.circuit import qasm
from repro.core import optimize_logical
from repro.transpiler.passes import coupling_violations

QASM_SOURCE = """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[6];
creg c[6];
h q[0];
cx q[0],q[3];
cx q[3],q[5];
ccx q[0],q[1],q[2];
cp(pi/4) q[2],q[5];
cx q[4],q[0];
barrier q;
measure q -> c;
"""


def main() -> None:
    circuit = qasm.loads(QASM_SOURCE)
    print(f"parsed circuit: {circuit.num_qubits} qubits, ops = {circuit.count_ops()}")

    # A 2x3 ladder device with a weak link between qubits 2 and 5.
    device = CouplingMap(
        [(0, 1), (1, 2), (3, 4), (4, 5), (0, 3), (1, 4), (2, 5)], name="ladder_2x3"
    )
    calibration = synthetic_calibration(device, seed=42)
    calibration.cx_error[(2, 5)] = 0.08  # pretend this link is unusually noisy

    original = optimize_logical(circuit)
    print(f"optimized (no routing): {original.cx_count()} CNOTs")

    for routing, noise_aware in (("sabre", False), ("nassc", False), ("nassc", True)):
        result = transpile(
            circuit, device, routing=routing, seed=0,
            noise_aware=noise_aware, calibration=calibration if noise_aware else None,
        )
        label = routing + ("+HA" if noise_aware else "")
        violations = coupling_violations(result.circuit, device)
        print(
            f"  {label:9s} total CNOTs {result.cx_count:3d}  depth {result.depth:3d}  "
            f"swaps {result.num_swaps}  coupling violations {len(violations)}"
        )
        assert not violations

    print("\nExport the compiled circuit back to OpenQASM with repro.circuit.qasm.dumps(...).")


if __name__ == "__main__":
    main()

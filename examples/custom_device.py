"""Compile an OpenQASM circuit for a user-defined device.

Shows the full public-API workflow a downstream user would follow:
  1. load a circuit from OpenQASM 2.0 text,
  2. describe a custom device as a ``Target`` (coupling graph + synthetic calibration),
  3. compile at different optimization levels, including the noise-aware ``O3`` preset
     that switches on automatically because the target is calibrated,
  4. verify the compiled circuit still respects the device connectivity.

Run with:  python examples/custom_device.py
"""

from repro import CouplingMap, Target, TranspileOptions, synthetic_calibration, transpile
from repro.circuit import qasm
from repro.core import optimize_logical
from repro.transpiler.passes import coupling_violations

QASM_SOURCE = """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[6];
creg c[6];
h q[0];
cx q[0],q[3];
cx q[3],q[5];
ccx q[0],q[1],q[2];
cp(pi/4) q[2],q[5];
cx q[4],q[0];
barrier q;
measure q -> c;
"""


def main() -> None:
    circuit = qasm.loads(QASM_SOURCE)
    print(f"parsed circuit: {circuit.num_qubits} qubits, ops = {circuit.count_ops()}")

    # A 2x3 ladder device with a weak link between qubits 2 and 5, described once as a
    # Target: coupling + calibration + output basis travel together through the API.
    coupling = CouplingMap(
        [(0, 1), (1, 2), (3, 4), (4, 5), (0, 3), (1, 4), (2, 5)], name="ladder_2x3"
    )
    calibration = synthetic_calibration(coupling, seed=42)
    calibration.cx_error[(2, 5)] = 0.08  # pretend this link is unusually noisy
    target = Target(coupling_map=coupling, calibration=calibration)

    original = optimize_logical(circuit)
    print(f"optimized (no routing): {original.cx_count()} CNOTs")

    # O1 is the paper pipeline; O3 adds noise-aware routing because the target is
    # calibrated, steering traffic away from the weak (2, 5) link.
    runs = (
        ("sabre", "O1"),
        ("nassc", "O1"),
        ("nassc", "O3"),
    )
    for routing, level in runs:
        result = transpile(
            circuit, target, TranspileOptions(routing=routing, level=level, seed=0)
        )
        label = f"{routing}@{level}"
        violations = coupling_violations(result.circuit, coupling)
        print(
            f"  {label:9s} total CNOTs {result.cx_count:3d}  depth {result.depth:3d}  "
            f"swaps {result.num_swaps}  coupling violations {len(violations)}"
        )
        assert not violations

    print("\nExport the compiled circuit back to OpenQASM with repro.circuit.qasm.dumps(...).")


if __name__ == "__main__":
    main()

"""End-to-end tracing: span trees from a local compile and a remote submission.

Demonstrates the observability layer (``repro.obs``):

  * trace a local ``transpile()`` call and walk the pass spans with their DAG deltas,
  * trace a remote submission and get ONE merged span tree covering
    client submit -> server queue wait -> pool worker -> every pass instance,
  * export the merged tree as Chrome trace-event JSON (open it in Perfetto or
    ``chrome://tracing``),
  * rank spans by self-time to see where the wall-clock actually went.

Run with:  python examples/trace_transpile.py

Set ``REPRO_SERVER_URL`` to trace against an already-running ``python -m repro serve``
instance; otherwise the example boots a private in-process server.
"""

import os
import tempfile

from repro import ReproClient, Target, Tracer, TranspileOptions, transpile, use_tracer
from repro.benchlib.qft import qft
from repro.obs import format_tree, top_spans, write_chrome_trace
from repro.server import ReproServer

SMOKE = os.environ.get("REPRO_SMOKE") == "1"
QUBITS = 5 if SMOKE else 8


def trace_local() -> None:
    print(f"== local traced transpile (qft{QUBITS}, linear, O1) ==")
    target = Target.from_topology("linear", QUBITS)
    with use_tracer(Tracer()):
        result = transpile(qft(QUBITS), target, level="O1", routing="sabre")
    spans = result.trace
    print(f"{len(spans)} spans; pass deltas:")
    for span in spans:
        if not span["name"].startswith("pass:") or not span["attrs"].get("changed"):
            continue
        attrs = span["attrs"]
        print(f"  {span['name'][5:]:24s} d_gates={attrs['d_gates']:+4d} "
              f"d_depth={attrs['d_depth']:+4d} swaps+={attrs['swaps_inserted']}")


def trace_remote(url: str) -> None:
    print(f"\n== remote traced submission ({url}) ==")
    client = ReproClient(url, client_id="trace-example")
    target = Target.from_topology("linear", QUBITS)
    with use_tracer(Tracer(process="client")):
        handle = client.submit(
            qft(QUBITS), target, TranspileOptions(routing="sabre", seed=0),
            name=f"qft{QUBITS}-traced",
        )
    result = handle.result(timeout=120)
    spans = result.trace

    processes = sorted({span["trace_id"] for span in spans})
    assert len(processes) == 1, "all spans must share one trace id"
    tiers = {span["process"] for span in spans}
    print(f"one merged tree: {len(spans)} spans across processes {sorted(tiers)}")
    print(format_tree(spans))

    out = os.path.join(tempfile.gettempdir(), "repro_trace.json")
    write_chrome_trace(out, spans)
    print(f"Chrome trace written to {out} (open in https://ui.perfetto.dev)")

    print("\ntop 5 spans by self-time:")
    for span, self_time in top_spans(spans, 5):
        print(f"  {self_time * 1e3:9.3f} ms  {span['name']}")


def main() -> None:
    trace_local()
    url = os.environ.get("REPRO_SERVER_URL")
    if url:
        trace_remote(url)
        return
    # Thread workers keep startup instant AND share the tracer-friendly process: span
    # trees merge identically under a process pool, only the example runs slower.
    server = ReproServer(port=0, use_processes=False, max_workers=2)
    with server.run_in_thread() as embedded:
        trace_remote(embedded.url)
    print("server drained and stopped")


if __name__ == "__main__":
    main()

"""Online transpilation: submit circuits to a running server and stream progress.

Demonstrates the service layer's *online* face (``repro.server`` + ``repro.client``)
above the batch example in ``batch_transpile.py``:

  * start (or attach to) a transpilation server,
  * submit a job and stream its queued -> running -> done transitions live,
  * prove the remote result is bit-identical to a local ``transpile()`` call,
  * resubmit the same work and watch it come back from the content-addressed cache,
  * fan a small batch out through ``POST /v1/batch`` and read the Prometheus metrics.

Run with:  python examples/remote_transpile.py

Set ``REPRO_SERVER_URL`` to use an already-running ``python -m repro serve`` instance;
otherwise the example boots a private in-process server on an ephemeral port.
"""

import os

from repro import ReproClient, Target, TranspileJob, TranspileOptions, qasm, transpile
from repro.benchlib import table_benchmarks
from repro.server import ReproServer, parse_metric

SMOKE = os.environ.get("REPRO_SMOKE") == "1"


def demo(url: str) -> None:
    client = ReproClient(url, client_id="example")
    health = client.healthz()
    print(f"server {health['version']} is {health['status']} "
          f"(pool={health['pool']}, queue bound={health['queue_bound']})")

    target = Target.from_topology("linear", 25)
    options = TranspileOptions(routing="nassc", seed=0)
    case = table_benchmarks(names=["grover_n4"])[0]
    circuit = case.build()

    # -- single job with live event streaming --------------------------------
    handle = client.submit(circuit, target, options, name=case.name)
    print(f"\nsubmitted {case.name}: id={handle.id} fingerprint={handle.fingerprint[:12]}...")
    for event in handle.events():
        detail = event["detail"]
        if event["state"] == "running":
            print(f"  -> running (waited {detail['queue_wait_seconds'] * 1e3:.1f} ms in queue)")
        elif event["state"] == "done":
            slowest = max(detail["pass_timing_log"], key=lambda item: item[1])
            print(f"  -> done: {detail['cx_count']} CNOTs, depth {detail['depth']} "
                  f"(slowest pass: {slowest[0]}, {slowest[1] * 1e3:.1f} ms)")
        else:
            print(f"  -> {event['state']}")
    remote = handle.result()

    # -- the remote result is bit-identical to a local compile ----------------
    local = transpile(circuit, target, options)
    identical = qasm.dumps(remote.circuit) == qasm.dumps(local.circuit)
    print(f"remote result bit-identical to local transpile(): {identical}")

    # -- identical resubmission is answered from the shared result cache ------
    again = client.submit(circuit, target, options, name=case.name)
    status = again.status()
    print(f"resubmitted: state={status['state']} from_cache={status['from_cache']}")

    # -- batch fan-out through POST /v1/batch ---------------------------------
    names = ["grover_n4"] if SMOKE else ["grover_n4", "adder_n10"]
    seeds = (0,) if SMOKE else (0, 1)
    jobs = [
        TranspileJob.from_circuit(
            kase.build(), target, TranspileOptions(routing=routing, seed=seed),
            name=f"{kase.name}[{routing},s{seed}]",
        )
        for kase in table_benchmarks(names=names)
        for routing in ("sabre", "nassc")
        for seed in seeds
    ]
    handles = client.submit_batch(jobs)
    results = [h.result() for h in handles]
    print(f"\nbatch of {len(jobs)} jobs done; total CNOTs = "
          f"{sum(result.cx_count for result in results)}")

    # -- observability: the Prometheus page ----------------------------------
    text = client.metrics_text()
    print(f"cache hit rate:  {parse_metric(text, 'repro_cache_hit_rate'):.0%}")
    print(f"jobs done:       {parse_metric(text, 'repro_jobs_finished_total', {'outcome': 'done'}):.0f}")
    print(f"served cached:   {parse_metric(text, 'repro_jobs_finished_total', {'outcome': 'cached'}):.0f}")


def main() -> None:
    url = os.environ.get("REPRO_SERVER_URL")
    if url:
        demo(url)
        return
    # Threads instead of a process pool: the example's circuits are small, and a thread
    # pool keeps startup instant.  `python -m repro serve` defaults to processes.
    server = ReproServer(port=0, use_processes=False, max_workers=2)
    with server.run_in_thread() as embedded:
        print(f"started embedded server on {embedded.url}")
        demo(embedded.url)
    print("server drained and stopped")


if __name__ == "__main__":
    main()

"""Timed scheduling: lower a routed circuit to nanosecond slots and inspect idle time.

Demonstrates the schedule subsystem (``repro.schedule``) on top of the compilation
pipeline:

  * compile with ``schedule="asap"`` so the pipeline's schedule stage attaches a
    :class:`~repro.schedule.Schedule` to the result,
  * compare the ASAP and ALAP policies (same total duration, different slack placement),
  * score SWAP candidates by inserted nanoseconds with ``route_cost="ns"`` and compare
    critical paths against unit-cost routing,
  * weight per-qubit idle windows by T1/T2 to rank decoherence-exposed qubits.

Run with:  python examples/schedule_circuit.py
"""

import os

from repro import Target, TranspileOptions, transpile
from repro.benchlib import table_benchmarks
from repro.schedule import decoherence_exposure, format_critical_path, format_timeline

SMOKE = os.environ.get("REPRO_SMOKE") == "1"


def main() -> None:
    name = "grover_n4" if SMOKE else "adder_n10"
    circuit = table_benchmarks(names=[name])[0].build()
    target = Target.from_topology("montreal", 27, calibrated=True)

    # -- ASAP vs ALAP: identical makespan, different slack placement --------------
    asap = transpile(circuit, target, TranspileOptions(routing="sabre", seed=0, schedule="asap"))
    alap = transpile(circuit, target, TranspileOptions(routing="sabre", seed=0, schedule="alap"))
    print(f"{name} on montreal: {asap.cx_count} CX after routing")
    print(f"  asap makespan {asap.schedule.duration} ns, idle {asap.schedule.total_idle} ns")
    print(f"  alap makespan {alap.schedule.duration} ns, idle {alap.schedule.total_idle} ns")
    assert asap.schedule.duration == alap.schedule.duration

    # -- duration-aware routing: score SWAPs by the nanoseconds they insert -------
    timed = transpile(
        circuit, target,
        TranspileOptions(routing="sabre", seed=0, schedule="asap", route_cost="ns"),
    )
    delta = timed.schedule.duration - asap.schedule.duration
    print(f"  ns-cost routing makespan {timed.schedule.duration} ns ({delta:+d} ns vs hops)")

    # -- where does the time go? ---------------------------------------------------
    print()
    print(format_timeline(asap.schedule, max_ops_per_qubit=4))
    print()
    print(format_critical_path(asap.schedule, max_ops=6))

    # -- decoherence exposure: idle windows weighted by 1/T1 + 1/T2 ----------------
    report = decoherence_exposure(asap.schedule, target.calibration)
    print()
    print("most decoherence-exposed qubits (idle-weighted):")
    for qubit, exposure in report.worst_qubits(3):
        print(f"  q{qubit}: exposure {exposure:.3e}  ({report.idle_ns.get(qubit, 0)} ns idle)")


if __name__ == "__main__":
    main()

"""Scale-out transpilation: a coordinator fronting a fleet of worker nodes.

Builds on ``remote_transpile.py``'s single server: here a :class:`FleetCoordinator`
places jobs across multiple :class:`FleetWorkerServer` nodes by consistent-hashing the
job's content fingerprint, so identical work always lands on the same node's cache.
The example

  * boots a coordinator plus two worker nodes (all in-process, ephemeral ports),
  * submits jobs through the coordinator exactly as against a solo server
    (``repro.client`` needs no fleet-specific code),
  * shows placement affinity: resubmitting the same circuit hits the owning
    node's cache,
  * shows the peer cache tier: a node that does not own a fingerprint fetches the
    result from the owner instead of recomputing,
  * stops one worker and watches the fleet keep serving,
  * reads the fleet Prometheus page (placements, reroutes, per-node queue depth).

Run with:  python examples/fleet_transpile.py
           REPRO_SMOKE=1 python examples/fleet_transpile.py   (quick CI-sized run)
"""

import os
import time

from repro import ReproClient, Target, TranspileOptions, qasm, transpile
from repro.benchlib import table_benchmarks
from repro.fleet import FleetCoordinator, FleetWorkerServer
from repro.server import parse_metric
from repro.server.http import ThreadedServer
from repro.server.metrics import iter_samples

SMOKE = os.environ.get("REPRO_SMOKE") == "1"


def main() -> None:
    # -- boot the fleet: one coordinator, two single-threaded worker nodes ------
    coordinator = ThreadedServer(
        FleetCoordinator(port=0, heartbeat_interval=0.2)
    ).start()
    workers = [
        ThreadedServer(
            FleetWorkerServer(
                coordinator.url, port=0, node_id=f"node-{i}",
                use_processes=False, max_workers=2,
            )
        ).start()
        for i in range(2)
    ]
    client = ReproClient(coordinator.url, client_id="fleet-example")
    while client.healthz().get("nodes_alive", 0) < len(workers):
        time.sleep(0.05)
    health = client.healthz()
    print(f"coordinator up: {health['nodes_alive']}/{health['nodes']} nodes alive, "
          f"{health['workers']} pool workers total")

    target = Target.from_topology("linear", 25)
    options = TranspileOptions(routing="nassc", seed=3)
    case = table_benchmarks(names=["grover_n4"])[0]
    circuit = case.build()

    try:
        # -- a job placed by fingerprint; result identical to a local compile ----
        handle = client.submit(circuit, target, options, name=case.name)
        remote = handle.result(timeout=120)
        owner = handle.status()["node"]
        local = transpile(circuit, target, options)
        identical = qasm.dumps(remote.circuit) == qasm.dumps(local.circuit)
        print(f"\n{case.name} placed on {owner}; "
              f"bit-identical to local transpile(): {identical}")

        # -- placement affinity: the resubmission hits the same node's cache -----
        again = client.submit(circuit, target, options, name=case.name)
        status = again.status()
        print(f"resubmitted: node={status['node']} from_cache={status['from_cache']}")

        # -- peer cache tier: ask a non-owner node directly ----------------------
        other = next(w for w in workers if w.server.node_id != owner)
        sideways = ReproClient(other.url).submit(circuit, target, options)
        sideways.result(timeout=120)
        print(f"{other.server.node_id} (not the owner) answered via the peer "
              f"cache tier instead of recomputing")

        # -- spread a little more work around, then lose a node ------------------
        names = ["grover_n4"] if SMOKE else ["grover_n4", "vqe_n8", "adder_n10"]
        handles = [
            client.submit(kase.build(), target,
                          TranspileOptions(routing="sabre", seed=seed))
            for kase in table_benchmarks(names=names)
            for seed in ((0,) if SMOKE else (0, 1))
        ]
        for h in handles:
            h.result(timeout=120)
        victim = workers.pop()
        victim.stop(timeout=10)
        print(f"\nstopped {victim.server.node_id}; fleet still ready: "
              f"{client.healthz()['ready']} "
              f"({client.healthz()['nodes_alive']} node(s) alive)")
        after = client.submit(circuit, target, TranspileOptions(routing="sabre", seed=99))
        after.result(timeout=120)
        print("new work still served after the node left")

        # -- the fleet Prometheus page -------------------------------------------
        text = client.metrics_text()
        placements = sum(
            value for sample, value in iter_samples(text)
            if sample.startswith("repro_fleet_placements_total")
        )
        print(f"\nplacements: {placements:.0f} across the fleet; nodes alive: "
              f"{parse_metric(text, 'repro_fleet_nodes_alive'):.0f}")
    finally:
        for handle in workers:
            handle.stop(drain=False, timeout=10)
        coordinator.stop(timeout=10)
    print("fleet drained and stopped")


if __name__ == "__main__":
    main()

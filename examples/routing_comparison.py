"""Routing study: reproduce a miniature version of the paper's Tables I/III/IV.

Compares Qiskit+SABRE against Qiskit+NASSC on several benchmark circuits and all three
evaluation topologies (ibmq_montreal heavy-hex, 25-qubit line, 5x5 grid), reporting the
added-CNOT reduction exactly as the paper does.

Run with:  python examples/routing_comparison.py [--full] [--routing METHOD]
           REPRO_SMOKE=1 python examples/routing_comparison.py   (quick CI-sized run)
"""

import argparse
import os

from repro.benchlib import table_benchmarks
from repro.evaluation import format_cnot_table, run_table_experiment
from repro.transpiler.registry import available_routings

SMOKE = os.environ.get("REPRO_SMOKE") == "1"


def main() -> None:
    routed = [name for name in available_routings() if name != "none"]
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="run every Table I benchmark (slow) instead of the quick subset")
    parser.add_argument("--seeds", type=int, default=1, help="number of routing seeds to average")
    parser.add_argument("--routing", default="nassc", choices=routed,
                        help="treatment method compared against the SABRE baseline")
    args = parser.parse_args()

    names = None if args.full else ["grover_n4", "grover_n6", "vqe_n8", "qpe_n9", "adder_n10"]
    if SMOKE:
        names = ["grover_n4", "adder_n10"]
    cases = table_benchmarks(names=names) if names else table_benchmarks()
    seeds = tuple(range(args.seeds))
    topologies = ("linear",) if SMOKE else ("montreal", "linear", "grid")

    for topology in topologies:
        result = run_table_experiment(
            topology, cases=cases, seeds=seeds, num_device_qubits=25, routing=args.routing
        )
        print(format_cnot_table(result))
        print(
            f"  -> geometric-mean reduction: total CNOTs {result.geomean_delta_cx_total:.2f}%, "
            f"added CNOTs {result.geomean_delta_cx_added:.2f}%\n"
        )


if __name__ == "__main__":
    main()
